// Package factor holds the low-rank factor model W·Hᵀ shared by all
// matrix-completion algorithms.
//
// W is m×k (one row per user) and H is n×k (one row per item), both
// stored as single flat row-major slices so that a row is a contiguous,
// cache-friendly sub-slice. Following §5.1 of the NOMAD paper, entries
// are initialized i.i.d. uniform on (0, 1/√k).
//
// A model carries one of two element precisions. Float64 is the
// default and what every solver supports; Float32 halves the model's
// memory traffic for the SGD-family hot paths that opt in (see
// DESIGN.md §9 for the precision contract). The two precisions use
// disjoint storage and disjoint accessors — UserRow vs UserRow32 —
// and the accessors panic on a precision mismatch rather than
// silently converting: every conversion in the system is explicit, at
// a token or checkpoint boundary.
package factor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nomad/internal/rng"
	"nomad/internal/vecmath"
)

// Precision selects the element type of a model's factor storage.
type Precision uint8

const (
	// Float64 is the default precision; all solvers support it.
	Float64 Precision = iota
	// Float32 halves model memory and bandwidth; supported by the
	// SGD-family hot paths that opt in via their precision option.
	Float32
)

func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// Bytes returns the size of one element at this precision.
func (p Precision) Bytes() int {
	if p == Float32 {
		return 4
	}
	return 8
}

// Model is a rank-k factorization candidate: A ≈ W·Hᵀ.
type Model struct {
	M, N, K int
	prec    Precision
	w       []float64 // m×k row-major (Float64 models)
	h       []float64 // n×k row-major (Float64 models)
	w32     []float32 // m×k row-major (Float32 models)
	h32     []float32 // n×k row-major (Float32 models)
}

// New returns a zero-valued Float64 model of the given shape.
func New(m, n, k int) *Model { return NewP(m, n, k, Float64) }

// NewP returns a zero-valued model of the given shape and precision.
func NewP(m, n, k int, prec Precision) *Model {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("factor: invalid shape m=%d n=%d k=%d", m, n, k))
	}
	md := &Model{M: m, N: n, K: k, prec: prec}
	switch prec {
	case Float64:
		md.w = make([]float64, m*k)
		md.h = make([]float64, n*k)
	case Float32:
		md.w32 = make([]float32, m*k)
		md.h32 = make([]float32, n*k)
	default:
		panic(fmt.Sprintf("factor: invalid precision %d", prec))
	}
	return md
}

// NewInit returns a Float64 model initialized like the paper's
// experiments: every entry drawn uniformly from (0, 1/√k), using the
// given seed.
func NewInit(m, n, k int, seed uint64) *Model {
	return NewInitP(m, n, k, seed, Float64)
}

// NewInitP is NewInit at a chosen precision. A Float32 model draws the
// same uniform sequence as the Float64 model with the same seed and
// narrows each entry, so the two initializations agree to one float32
// rounding — the property the float32-vs-float64 RMSE tests lean on.
func NewInitP(m, n, k int, seed uint64, prec Precision) *Model {
	md := NewP(m, n, k, prec)
	r := rng.New(seed)
	hi := 1 / math.Sqrt(float64(k))
	switch prec {
	case Float64:
		for i := range md.w {
			md.w[i] = r.Uniform(0, hi)
		}
		for i := range md.h {
			md.h[i] = r.Uniform(0, hi)
		}
	case Float32:
		for i := range md.w32 {
			md.w32[i] = float32(r.Uniform(0, hi))
		}
		for i := range md.h32 {
			md.h32[i] = float32(r.Uniform(0, hi))
		}
	}
	return md
}

// Precision reports the model's element precision.
func (md *Model) Precision() Precision { return md.prec }

func (md *Model) need(p Precision, what string) {
	if md.prec != p {
		panic(fmt.Sprintf("factor: %s on a %s model", what, md.prec))
	}
}

// UserRow returns user i's factor row wᵢ. The slice aliases model
// storage: writes through it update the model. Panics unless the model
// is Float64.
func (md *Model) UserRow(i int) []float64 {
	md.need(Float64, "UserRow")
	return md.w[i*md.K : i*md.K+md.K]
}

// ItemRow returns item j's factor row hⱼ, aliasing model storage.
// Panics unless the model is Float64.
func (md *Model) ItemRow(j int) []float64 {
	md.need(Float64, "ItemRow")
	return md.h[j*md.K : j*md.K+md.K]
}

// UserRow32 is UserRow for Float32 models.
func (md *Model) UserRow32(i int) []float32 {
	md.need(Float32, "UserRow32")
	return md.w32[i*md.K : i*md.K+md.K]
}

// ItemRow32 is ItemRow for Float32 models.
func (md *Model) ItemRow32(j int) []float32 {
	md.need(Float32, "ItemRow32")
	return md.h32[j*md.K : j*md.K+md.K]
}

// Predict returns the model's estimate of rating (i, j): ⟨wᵢ, hⱼ⟩. For
// Float32 models the product accumulates in float32 — the same
// arithmetic the float32 training kernels use. The dot goes through
// the rank-dispatched kernel, so Predict sees the same SIMD/scalar
// selection as training; eval loops that predict in bulk should hoist
// vecmath.DotKernel(md.K) out of the loop instead.
func (md *Model) Predict(i, j int) float64 {
	if md.prec == Float32 {
		return float64(vecmath.DotKernel32(md.K)(md.UserRow32(i), md.ItemRow32(j)))
	}
	return vecmath.DotKernel(md.K)(md.UserRow(i), md.ItemRow(j))
}

// Clone returns a deep copy of the model.
func (md *Model) Clone() *Model {
	c := NewP(md.M, md.N, md.K, md.prec)
	copy(c.w, md.w)
	copy(c.h, md.h)
	copy(c.w32, md.w32)
	copy(c.h32, md.h32)
	return c
}

// CopyFrom overwrites md's parameters with src's. Shape and precision
// must match.
func (md *Model) CopyFrom(src *Model) {
	if md.M != src.M || md.N != src.N || md.K != src.K {
		panic("factor: CopyFrom shape mismatch")
	}
	if md.prec != src.prec {
		panic("factor: CopyFrom precision mismatch")
	}
	copy(md.w, src.w)
	copy(md.h, src.h)
	copy(md.w32, src.w32)
	copy(md.h32, src.h32)
}

// Convert returns a copy of the model at the given precision,
// narrowing or widening every entry. Converting to the model's own
// precision is a Clone.
func (md *Model) Convert(prec Precision) *Model {
	c := NewP(md.M, md.N, md.K, prec)
	switch {
	case md.prec == prec:
		c.CopyFrom(md)
	case prec == Float32:
		for i, v := range md.w {
			c.w32[i] = float32(v)
		}
		for i, v := range md.h {
			c.h32[i] = float32(v)
		}
	default:
		for i, v := range md.w32 {
			c.w[i] = float64(v)
		}
		for i, v := range md.h32 {
			c.h[i] = float64(v)
		}
	}
	return c
}

// WData exposes the flat W array (m×k row-major) of a Float64 model.
// Intended for algorithms that partition rows across workers; each
// worker must touch only its own rows.
func (md *Model) WData() []float64 {
	md.need(Float64, "WData")
	return md.w
}

// HData exposes the flat H array (n×k row-major), with the same
// ownership discipline as WData.
func (md *Model) HData() []float64 {
	md.need(Float64, "HData")
	return md.h
}

// WData32 is WData for Float32 models.
func (md *Model) WData32() []float32 {
	md.need(Float32, "WData32")
	return md.w32
}

// HData32 is HData for Float32 models.
func (md *Model) HData32() []float32 {
	md.need(Float32, "HData32")
	return md.h32
}

// CopyItemRowTo64 widens item j's row into dst (length K), whatever the
// model's precision. Used at token boundaries: the distributed wire
// format stays float64 regardless of model precision.
func (md *Model) CopyItemRowTo64(j int, dst []float64) {
	if md.prec == Float32 {
		row := md.ItemRow32(j)
		for l, v := range row {
			dst[l] = float64(v)
		}
		return
	}
	copy(dst, md.ItemRow(j))
}

// SetItemRowFrom64 narrows src (length K) into item j's row, whatever
// the model's precision — the receiving half of CopyItemRowTo64.
func (md *Model) SetItemRowFrom64(j int, src []float64) {
	if md.prec == Float32 {
		row := md.ItemRow32(j)
		for l, v := range src {
			row[l] = float32(v)
		}
		return
	}
	copy(md.ItemRow(j), src)
}

// CopyUserRowTo64 widens user i's row into dst (length K), whatever
// the model's precision. The replication plane ships user rows as
// float64 regardless of model precision, mirroring the token wire
// format.
func (md *Model) CopyUserRowTo64(i int, dst []float64) {
	if md.prec == Float32 {
		row := md.UserRow32(i)
		for l, v := range row {
			dst[l] = float64(v)
		}
		return
	}
	copy(dst, md.UserRow(i))
}

// SetUserRowFrom64 narrows src (length K) into user i's row, whatever
// the model's precision — the receiving half of CopyUserRowTo64, used
// when a buddy re-materializes a dead machine's user rows.
func (md *Model) SetUserRowFrom64(i int, src []float64) {
	if md.prec == Float32 {
		row := md.UserRow32(i)
		for l, v := range src {
			row[l] = float32(v)
		}
		return
	}
	copy(md.UserRow(i), src)
}

// UserNorm returns the Euclidean norm ‖wᵢ‖ of user i's factor row,
// accumulated in float64 at either precision. The serving layer's
// norm-bounded candidate pruning multiplies it against item norms for
// an admissible score upper bound (|⟨wᵢ,hⱼ⟩| ≤ ‖wᵢ‖·‖hⱼ‖).
func (md *Model) UserNorm(i int) float64 {
	if md.prec == Float32 {
		return norm32(md.UserRow32(i))
	}
	return norm64(md.UserRow(i))
}

// ItemNorm returns the Euclidean norm ‖hⱼ‖ of item j's factor row,
// accumulated in float64 at either precision.
func (md *Model) ItemNorm(j int) float64 {
	if md.prec == Float32 {
		return norm32(md.ItemRow32(j))
	}
	return norm64(md.ItemRow(j))
}

func norm64(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v * v
	}
	return math.Sqrt(s)
}

func norm32(row []float32) float64 {
	var s float64
	for _, v := range row {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

const modelMagic uint32 = 0x4e4d444d // "NMDM"

// binHeader is the on-disk model header. Prec occupies what was a
// reserved zero field, so Float64 models round-trip with readers and
// writers from before precision existed.
type binHeader struct {
	Magic   uint32
	Prec    uint32
	M, N, K int64
}

// WriteBinary serializes the model. Float32 models write float32
// payloads — half the bytes, and exact round-tripping at their own
// precision.
func (md *Model) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := binHeader{Magic: modelMagic, Prec: uint32(md.prec),
		M: int64(md.M), N: int64(md.N), K: int64(md.K)}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("factor: write header: %w", err)
	}
	var werr, herr error
	if md.prec == Float32 {
		werr = binary.Write(bw, binary.LittleEndian, md.w32)
		herr = binary.Write(bw, binary.LittleEndian, md.h32)
	} else {
		werr = binary.Write(bw, binary.LittleEndian, md.w)
		herr = binary.Write(bw, binary.LittleEndian, md.h)
	}
	if werr != nil {
		return fmt.Errorf("factor: write W: %w", werr)
	}
	if herr != nil {
		return fmt.Errorf("factor: write H: %w", herr)
	}
	return bw.Flush()
}

// ReadBinary deserializes a model written by WriteBinary, restoring its
// precision.
func ReadBinary(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr binHeader
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("factor: read header: %w", err)
	}
	if hdr.Magic != modelMagic {
		return nil, fmt.Errorf("factor: bad magic %#x", hdr.Magic)
	}
	if hdr.Prec > uint32(Float32) {
		return nil, fmt.Errorf("factor: unknown precision %d", hdr.Prec)
	}
	if hdr.M <= 0 || hdr.N <= 0 || hdr.K <= 0 {
		return nil, fmt.Errorf("factor: corrupt header m=%d n=%d k=%d", hdr.M, hdr.N, hdr.K)
	}
	md := NewP(int(hdr.M), int(hdr.N), int(hdr.K), Precision(hdr.Prec))
	var werr, herr error
	if md.prec == Float32 {
		werr = binary.Read(br, binary.LittleEndian, md.w32)
		herr = binary.Read(br, binary.LittleEndian, md.h32)
	} else {
		werr = binary.Read(br, binary.LittleEndian, md.w)
		herr = binary.Read(br, binary.LittleEndian, md.h)
	}
	if werr != nil {
		return nil, fmt.Errorf("factor: read W: %w", werr)
	}
	if herr != nil {
		return nil, fmt.Errorf("factor: read H: %w", herr)
	}
	return md, nil
}
