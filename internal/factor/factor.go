// Package factor holds the low-rank factor model W·Hᵀ shared by all
// matrix-completion algorithms.
//
// W is m×k (one row per user) and H is n×k (one row per item), both
// stored as single flat row-major float64 slices so that a row is a
// contiguous, cache-friendly sub-slice. Following §5.1 of the NOMAD
// paper, entries are initialized i.i.d. uniform on (0, 1/√k).
package factor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nomad/internal/rng"
	"nomad/internal/vecmath"
)

// Model is a rank-k factorization candidate: A ≈ W·Hᵀ.
type Model struct {
	M, N, K int
	w       []float64 // m×k row-major
	h       []float64 // n×k row-major
}

// New returns a zero-valued model of the given shape.
func New(m, n, k int) *Model {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("factor: invalid shape m=%d n=%d k=%d", m, n, k))
	}
	return &Model{M: m, N: n, K: k, w: make([]float64, m*k), h: make([]float64, n*k)}
}

// NewInit returns a model initialized like the paper's experiments:
// every entry drawn uniformly from (0, 1/√k), using the given seed.
func NewInit(m, n, k int, seed uint64) *Model {
	md := New(m, n, k)
	r := rng.New(seed)
	hi := 1 / math.Sqrt(float64(k))
	for i := range md.w {
		md.w[i] = r.Uniform(0, hi)
	}
	for i := range md.h {
		md.h[i] = r.Uniform(0, hi)
	}
	return md
}

// UserRow returns user i's factor row wᵢ. The slice aliases model
// storage: writes through it update the model.
func (md *Model) UserRow(i int) []float64 { return md.w[i*md.K : i*md.K+md.K] }

// ItemRow returns item j's factor row hⱼ, aliasing model storage.
func (md *Model) ItemRow(j int) []float64 { return md.h[j*md.K : j*md.K+md.K] }

// Predict returns the model's estimate of rating (i, j): ⟨wᵢ, hⱼ⟩.
func (md *Model) Predict(i, j int) float64 {
	return vecmath.Dot(md.UserRow(i), md.ItemRow(j))
}

// Clone returns a deep copy of the model.
func (md *Model) Clone() *Model {
	c := New(md.M, md.N, md.K)
	copy(c.w, md.w)
	copy(c.h, md.h)
	return c
}

// CopyFrom overwrites md's parameters with src's. Shapes must match.
func (md *Model) CopyFrom(src *Model) {
	if md.M != src.M || md.N != src.N || md.K != src.K {
		panic("factor: CopyFrom shape mismatch")
	}
	copy(md.w, src.w)
	copy(md.h, src.h)
}

// WData exposes the flat W array (m×k row-major). Intended for
// algorithms that partition rows across workers; each worker must touch
// only its own rows.
func (md *Model) WData() []float64 { return md.w }

// HData exposes the flat H array (n×k row-major), with the same
// ownership discipline as WData.
func (md *Model) HData() []float64 { return md.h }

const modelMagic uint32 = 0x4e4d444d // "NMDM"

// WriteBinary serializes the model.
func (md *Model) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := struct {
		Magic   uint32
		_       uint32
		M, N, K int64
	}{Magic: modelMagic, M: int64(md.M), N: int64(md.N), K: int64(md.K)}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("factor: write header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, md.w); err != nil {
		return fmt.Errorf("factor: write W: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, md.h); err != nil {
		return fmt.Errorf("factor: write H: %w", err)
	}
	return bw.Flush()
}

// ReadBinary deserializes a model written by WriteBinary.
func ReadBinary(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr struct {
		Magic   uint32
		_       uint32
		M, N, K int64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("factor: read header: %w", err)
	}
	if hdr.Magic != modelMagic {
		return nil, fmt.Errorf("factor: bad magic %#x", hdr.Magic)
	}
	if hdr.M <= 0 || hdr.N <= 0 || hdr.K <= 0 {
		return nil, fmt.Errorf("factor: corrupt header m=%d n=%d k=%d", hdr.M, hdr.N, hdr.K)
	}
	md := New(int(hdr.M), int(hdr.N), int(hdr.K))
	if err := binary.Read(br, binary.LittleEndian, md.w); err != nil {
		return nil, fmt.Errorf("factor: read W: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, md.h); err != nil {
		return nil, fmt.Errorf("factor: read H: %w", err)
	}
	return md, nil
}
