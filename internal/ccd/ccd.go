// Package ccd implements CCD++ (Yu, Hsieh, Si & Dhillon, ICDM 2012),
// the coordinate-descent baseline of the paper's §2.2/§5 experiments.
//
// CCD++ updates the factorization one rank at a time. With the residual
// R = A − WHᵀ maintained incrementally over the observed entries, the
// rank-ℓ update adds the old rank-ℓ contribution back
// (R̂ = R + w.ℓ h.ℓᵀ), solves the one-dimensional least-squares
// problems
//
//	u_i = Σ_j R̂_ij v_j / (λ|Ωᵢ| + Σ_j v_j²)
//	v_j = Σ_i R̂_ij u_i / (λ|Ω̄ⱼ| + Σ_i u_i²)
//
// in closed form, then subtracts the new contribution. Each rank update
// is embarrassingly parallel over rows (then columns) but requires a
// full synchronization between the u-phase and the v-phase — in
// distributed mode every rank costs a broadcast of the new factor
// column plus two barriers, which is why CCD++ trails the asynchronous
// methods as communication gets slower (Figs 8, 11, 12, 20).
package ccd

import (
	"context"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/parallel"
	"nomad/internal/partition"
	"nomad/internal/train"
)

// CCD is the solver. The zero value is ready to use.
type CCD struct{}

// New returns a CCD++ solver.
func New() *CCD { return &CCD{} }

// Name implements train.Algorithm.
func (*CCD) Name() string { return "ccd" }

// Train implements train.Algorithm. One "epoch" of the shared stop
// accounting corresponds to touching every rating once; a full outer
// iteration (all k ranks) touches each rating 4k times (add-back,
// u-phase, v-phase, subtract), of which the 2k solve touches are
// counted as updates.
func (*CCD) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("ccd"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("ccd", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	m, n := ds.Rows(), ds.Cols()
	tr := ds.Train
	// CCD++'s only cross-iteration state is the model itself: the
	// residual is a function of (A, W, H) and is rebuilt below, so a
	// resumed run needs just the restored factors and update total.
	var md *factor.Model
	var resumed int64
	outer := 0
	if st := cfg.Resume; st != nil {
		md = st.Model
		resumed = st.Updates
		outer = int(st.Ring) // EpochEvent numbering continues
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
	}
	k := cfg.K

	net := netsim.New(cfg.Machines, cfg.Profile)
	defer net.Shutdown()
	userPart := partition.EqualRanges(m, cfg.Machines)
	itemPart := partition.EqualRanges(n, cfg.Machines)

	// Residual in CSR order: R = A − W Hᵀ.
	residual := make([]float64, tr.NNZ())
	copy(residual, tr.Vals())
	parallel.For(p, m, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, _ := tr.Row(i)
			rowBase, _ := tr.RowRange(i)
			for x, j := range cols {
				residual[rowBase+int64(x)] -= md.Predict(i, int(j))
			}
		}
	})

	w := md.WData()
	h := md.HData()
	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()
	var updates atomic.Int64
	updates.Store(resumed)

	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		for l := 0; l < k; l++ {
			// R̂ = R + u vᵀ over observed entries (CSR walk).
			parallel.For(p, m, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					ui := w[i*k+l]
					cols, _ := tr.Row(i)
					rowBase, _ := tr.RowRange(i)
					for x, j := range cols {
						residual[rowBase+int64(x)] += ui * h[int(j)*k+l]
					}
				}
			})
			// u-phase: closed-form update of column l of W.
			parallel.For(p, m, func(worker, lo, hi int) {
				var touched int64
				for i := lo; i < hi; i++ {
					cols, _ := tr.Row(i)
					if len(cols) == 0 {
						continue
					}
					rowBase, _ := tr.RowRange(i)
					var num, den float64
					for x, j := range cols {
						vj := h[int(j)*k+l]
						num += residual[rowBase+int64(x)] * vj
						den += vj * vj
					}
					den += cfg.Lambda * float64(len(cols))
					w[i*k+l] = num / den
					touched += int64(len(cols))
				}
				counter.Add(worker, touched)
				updates.Add(touched)
			})
			// Distributed: broadcast the new u column blocks.
			broadcastColumn(net, userPart, cfg.Machines)
			// v-phase: closed-form update of column l of H (CSC walk).
			parallel.For(p, n, func(worker, lo, hi int) {
				var touched int64
				for j := lo; j < hi; j++ {
					rows, pos := tr.Col(j)
					if len(rows) == 0 {
						continue
					}
					var num, den float64
					for x, i := range rows {
						ui := w[int(i)*k+l]
						num += residual[pos[x]] * ui
						den += ui * ui
					}
					den += cfg.Lambda * float64(len(rows))
					h[j*k+l] = num / den
					touched += int64(len(rows))
				}
				counter.Add(worker, touched)
				updates.Add(touched)
			})
			broadcastColumn(net, itemPart, cfg.Machines)
			// R = R̂ − u vᵀ with the fresh columns.
			parallel.For(p, m, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					ui := w[i*k+l]
					cols, _ := tr.Row(i)
					rowBase, _ := tr.RowRange(i)
					for x, j := range cols {
						residual[rowBase+int64(x)] -= ui * h[int(j)*k+l]
					}
				}
			})
			if train.StopCheck(ctx, cfg, start, updates.Load()) {
				break
			}
		}
		outer++
		hooks.EmitEpoch(train.EpochEvent{Epoch: outer, Updates: updates.Load()})
		if cfg.Machines > 1 {
			hooks.EmitNetwork(train.NetworkEvent{BytesSent: net.BytesSent(), MessagesSent: net.MessagesSent()})
		}
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	return &train.Result{
		Algorithm:    "ccd",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      updates.Load(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    net.BytesSent(),
		MessagesSent: net.MessagesSent(),
		Final: &train.State{
			Algorithm: "ccd",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(outer),
			Model:     md,
		},
	}, ctx.Err()
}

// broadcastColumn models the all-to-all exchange of one freshly
// computed factor column: every machine ships its partition's slice of
// the column to every other machine, then all wait for arrival — the
// per-rank synchronization that bulk-synchronous CCD++ pays.
func broadcastColumn(net *netsim.Network, part *partition.Partition, machines int) {
	if machines <= 1 {
		return
	}
	expected := make([]int, machines)
	for src := 0; src < machines; src++ {
		rows := part.Size(src)
		if rows == 0 {
			continue
		}
		size := 16 + 8*rows // one float64 per row plus header
		for dst := 0; dst < machines; dst++ {
			if dst == src {
				continue
			}
			net.Send(src, dst, size, nil)
			expected[dst]++
		}
	}
	for mc, count := range expected {
		for i := 0; i < count; i++ {
			<-net.Recv(mc)
		}
	}
}
