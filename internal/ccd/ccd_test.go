package ccd

import (
	"math"
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/metrics"
	"nomad/internal/netsim"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(40 * ds.Train.NNZ()) // ≈ 2.5 outer iterations at k=8
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestMultiWorkerMatchesQuality(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Workers = 4
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(40 * ds.Train.NNZ())
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestDistributedBroadcasts(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Workers = 1
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(20 * ds.Train.NNZ())
	cfg.Profile = netsim.Instant()
	res := algotest.Run(t, New(), ds, cfg)
	if res.MessagesSent == 0 {
		t.Error("distributed CCD++ sent no column broadcasts")
	}
	algotest.RequireConverged(t, res, 0.7)
}

// TestObjectiveMonotone: CCD++ is a (block) coordinate-descent method
// on objective (1); each full outer iteration must not increase it.
func TestObjectiveMonotone(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	lambda := cfg.Lambda

	// Run 1, 2, 3 outer iterations and compare objectives. One outer
	// iteration = 2·k·nnz counted updates (u-phase + v-phase per rank).
	perIter := int64(2 * cfg.K * ds.Train.NNZ())
	var prev float64 = math.Inf(1)
	for iters := 1; iters <= 3; iters++ {
		c := cfg
		c.MaxUpdates = int64(iters) * perIter
		res := algotest.Run(t, New(), ds, c)
		obj := metrics.Objective(res.Model, ds.Train, lambda)
		if obj > prev*(1+1e-9) {
			t.Fatalf("objective increased at iteration %d: %v -> %v", iters, prev, obj)
		}
		prev = obj
	}
}

func TestName(t *testing.T) {
	if New().Name() != "ccd" {
		t.Fatal("wrong name")
	}
}
