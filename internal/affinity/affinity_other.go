//go:build !linux

package affinity

// setAffinity is a no-op off linux: Go's runtime offers no portable
// core-affinity control, so Pin degrades to thread locking only.
func setAffinity(int) bool { return false }
