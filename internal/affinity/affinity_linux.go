package affinity

import (
	"syscall"
	"unsafe"
)

// setAffinity restricts the current thread to the given CPU core via
// sched_setaffinity(2). Thread-scoped: pid 0 with the caller locked to
// its OS thread targets exactly that thread.
func setAffinity(core int) bool {
	var mask [1024 / 64]uint64
	mask[core/64] = 1 << (uint(core) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(mask)), uintptr(unsafe.Pointer(&mask[0])))
	return errno == 0
}
