package affinity

import (
	"runtime"
	"sync"
	"testing"
)

// TestPinUnpin: Pin must never fail hard — on linux it should normally
// succeed outright, elsewhere it degrades to thread locking. Either
// way the goroutine keeps running and Unpin releases it.
func TestPinUnpin(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.NumCPU(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pinned := Pin(w)
			defer Unpin()
			if runtime.GOOS == "linux" && !pinned {
				// Restricted sandboxes can refuse sched_setaffinity;
				// report it without failing the suite.
				t.Logf("worker %d: core affinity not granted", w)
			}
			// Do a little work on the pinned thread.
			s := 0
			for i := 0; i < 1000; i++ {
				s += i
			}
			if s != 499500 {
				t.Errorf("worker %d: bad sum %d", w, s)
			}
		}(w)
	}
	wg.Wait()
}
