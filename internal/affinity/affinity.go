// Package affinity pins worker goroutines to OS threads and, where the
// platform allows it, to distinct CPU cores. The multi-core scaling
// experiments use it to stop the scheduler migrating SGD workers
// between cores mid-run, which blurs per-core cache residency and adds
// variance to updates/s measurements.
//
// Pinning is strictly best-effort: on platforms without an affinity
// syscall (or when the syscall fails, e.g. in a restricted sandbox) the
// goroutine is still locked to its thread and training proceeds
// unaffected.
package affinity

import "runtime"

// Pin locks the calling goroutine to an OS thread and asks the kernel
// to keep that thread on CPU core (worker mod NumCPU). It reports
// whether core affinity actually took effect; thread locking always
// does. Callers should invoke Unpin (typically deferred) when the
// worker loop exits.
func Pin(worker int) bool {
	runtime.LockOSThread()
	ncpu := runtime.NumCPU()
	if ncpu <= 0 {
		return false
	}
	return setAffinity(worker % ncpu)
}

// Unpin releases the thread lock taken by Pin. Any core affinity on the
// thread dies with the thread once the goroutine unlocks it.
func Unpin() { runtime.UnlockOSThread() }
