// Package dsgdpp implements DSGD++ (Teflioudi, Makari & Gemulla, ICDM
// 2012), the improved bulk-synchronous baseline of §4.1.
//
// DSGD++ addresses DSGD's first drawback — network idle while the CPU
// computes and vice versa — by splitting the items into 2p blocks
// instead of p. At sub-epoch s, worker g computes on block
// (2g + s) mod 2p while the block it will need next, (2g + s + 1) mod
// 2p (which worker (g+1) mod p finished one sub-epoch earlier), is
// already in flight across the network. Transfers therefore overlap
// with computation, but the per-sub-epoch synchronization barrier
// remains, so DSGD++ still suffers the curse of the last reducer — the
// precise gap NOMAD closes (§4.1, Figs 8, 11, 12).
package dsgdpp

import (
	"context"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/parallel"
	"nomad/internal/partition"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// DSGDPP is the solver. The zero value is ready to use.
type DSGDPP struct{}

// New returns a DSGD++ solver.
func New() *DSGDPP { return &DSGDPP{} }

// Name implements train.Algorithm.
func (*DSGDPP) Name() string { return "dsgdpp" }

// stratum is one (user-block, item-block) cell; see dsgd.
type stratum struct {
	users []int32
	items []int32
	vals  []float64
	perm  []int32
}

// Train implements train.Algorithm.
func (*DSGDPP) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("dsgd++"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("dsgdpp", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	bp := 2 * p // item blocks
	m, n := ds.Rows(), ds.Cols()
	userPart := partition.EqualRanges(m, p)
	itemPart := partition.EqualRanges(n, bp)
	strata := buildStrata(ds, userPart, itemPart, p, bp)

	net := netsim.New(cfg.Machines, cfg.Profile)
	defer net.Shutdown()
	machineOf := func(g int) int { return g / cfg.Workers }

	driver := sched.NewBoldDriver(cfg.BoldStep)
	root := rng.New(cfg.Seed)
	workerRNG := make([]*rng.Source, p)
	var md *factor.Model
	var updates atomic.Int64
	s := 0 // ring position persists across epochs (and checkpoints)
	if st := cfg.Resume; st != nil {
		md = st.Model
		updates.Store(st.Updates)
		s = int(st.Ring)
		if st.Bold != nil {
			driver.Restore(st.Bold.Step, st.Bold.Prev, st.Bold.Primed)
		}
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
		for g := range workerRNG {
			workerRNG[g] = root.Split(uint64(g))
		}
	}
	step := driver.Step
	kern := vecmath.KernelFor(cfg.K) // square loss: fused kernel, chosen once
	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()

	epoch := cfg.EpochsDone(updates.Load())
	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		var epochLoss float64
		for sub := 0; sub < bp; sub++ {
			// Initiate next-block transfers *before* computing, so
			// they ride the network while the CPU is busy.
			expected := prefetch(net, itemPart, machineOf, p, bp, s, cfg.K)

			losses := make([]float64, p)
			parallel.For(p, p, func(_, lo, hi int) {
				for g := lo; g < hi; g++ {
					blk := strata[g*bp+(2*g+s)%bp]
					losses[g] = sgdPass(blk, md, kern, step, cfg.Lambda, workerRNG[g])
					counter.Add(g, int64(len(blk.perm)))
					updates.Add(int64(len(blk.perm)))
				}
			})
			for _, l := range losses {
				epochLoss += l
			}
			// Synchronization point: collect the prefetched blocks.
			// They have usually arrived already — that is the overlap.
			for mc, count := range expected {
				for i := 0; i < count; i++ {
					<-net.Recv(mc)
				}
			}
			s++
			if train.StopCheck(ctx, cfg, start, updates.Load()) {
				break
			}
		}
		step = driver.Observe(epochLoss)
		epoch++
		hooks.EmitEpoch(train.EpochEvent{Epoch: epoch, Updates: updates.Load()})
		if cfg.Machines > 1 {
			hooks.EmitNetwork(train.NetworkEvent{BytesSent: net.BytesSent(), MessagesSent: net.MessagesSent()})
		}
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	boldStep, boldPrev, boldPrimed := driver.Snapshot()
	return &train.Result{
		Algorithm:    "dsgdpp",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      updates.Load(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    net.BytesSent(),
		MessagesSent: net.MessagesSent(),
		Final: &train.State{
			Algorithm: "dsgdpp",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(s),
			Bold:      &train.BoldState{Step: boldStep, Prev: boldPrev, Primed: boldPrimed},
			Model:     md,
			RNG:       train.CaptureStreams(root, workerRNG),
		},
	}, ctx.Err()
}

// prefetch starts the transfer of each worker's *next* item block,
// (2g+s+1) mod 2p, from the worker that finished it at sub-epoch s-1
// (worker (g+1) mod p). Returns the expected arrival count per machine.
func prefetch(net *netsim.Network, itemPart *partition.Partition,
	machineOf func(int) int, p, bp, s, k int) []int {

	expected := make([]int, net.Machines())
	for g := 0; g < p; g++ {
		holder := (g + 1) % p
		src, dst := machineOf(holder), machineOf(g)
		if src == dst {
			continue
		}
		blockIdx := (2*g + s + 1) % bp
		part := itemPart.Part(blockIdx)
		if len(part) == 0 {
			continue
		}
		net.Send(src, dst, netsim.BlockWireSize(len(part), k), s)
		expected[dst]++
	}
	return expected
}

// sgdPass runs one randomized SGD sweep over a stratum; see dsgd. The
// square loss routes through the fused kernel selected once per run.
func sgdPass(blk *stratum, md *factor.Model, kern vecmath.Kernel, step, lambda float64, r *rng.Source) float64 {
	for i := range blk.perm {
		blk.perm[i] = int32(i)
	}
	r.Shuffle(len(blk.perm), func(i, j int) { blk.perm[i], blk.perm[j] = blk.perm[j], blk.perm[i] })
	var loss float64
	for _, x := range blk.perm {
		e := kern.Step(md.UserRow(int(blk.users[x])), md.ItemRow(int(blk.items[x])),
			blk.vals[x], step, lambda)
		loss += e * e
	}
	return loss
}

// buildStrata sorts the training ratings into the p×2p grid.
func buildStrata(ds *dataset.Dataset, userPart, itemPart *partition.Partition, p, bp int) []*stratum {
	tr := ds.Train
	counts := make([]int, p*bp)
	for i := 0; i < tr.Rows(); i++ {
		g := userPart.Owner(i)
		cols, _ := tr.Row(i)
		for _, j := range cols {
			counts[g*bp+itemPart.Owner(int(j))]++
		}
	}
	strata := make([]*stratum, p*bp)
	for id := range strata {
		c := counts[id]
		strata[id] = &stratum{
			users: make([]int32, 0, c),
			items: make([]int32, 0, c),
			vals:  make([]float64, 0, c),
			perm:  make([]int32, c),
		}
	}
	for i := 0; i < tr.Rows(); i++ {
		g := userPart.Owner(i)
		cols, vals := tr.Row(i)
		for x, j := range cols {
			blk := strata[g*bp+itemPart.Owner(int(j))]
			blk.users = append(blk.users, int32(i))
			blk.items = append(blk.items, j)
			blk.vals = append(blk.vals, vals[x])
		}
	}
	return strata
}
