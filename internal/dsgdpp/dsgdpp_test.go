package dsgdpp

import (
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/netsim"
	"nomad/internal/partition"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.BoldStep = 0.05
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestDistributedConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Workers = 2
	cfg.BoldStep = 0.05
	cfg.Profile = netsim.Instant()
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
	if res.MessagesSent == 0 {
		t.Error("distributed DSGD++ sent no blocks")
	}
}

// TestScheduleDisjointAndComplete verifies the 2p-block schedule: at
// every sub-epoch all workers process distinct blocks, and over 2p
// sub-epochs each worker sees every block exactly once.
func TestScheduleDisjointAndComplete(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		bp := 2 * p
		for s := 0; s < bp; s++ {
			seen := map[int]bool{}
			for g := 0; g < p; g++ {
				b := (2*g + s) % bp
				if seen[b] {
					t.Fatalf("p=%d s=%d: block %d processed twice", p, s, b)
				}
				seen[b] = true
			}
		}
		for g := 0; g < p; g++ {
			seen := map[int]bool{}
			for s := 0; s < bp; s++ {
				seen[(2*g+s)%bp] = true
			}
			if len(seen) != bp {
				t.Fatalf("p=%d worker %d covers only %d of %d blocks", p, g, len(seen), bp)
			}
		}
	}
}

// TestPrefetchSourceFinishedEarlier verifies the overlap invariant: the
// block prefetched for worker g at sub-epoch s was last processed at
// sub-epoch s-1 (by worker g+1), so it is free to travel during s.
func TestPrefetchSourceFinishedEarlier(t *testing.T) {
	for _, p := range []int{2, 4, 5} {
		bp := 2 * p
		for s := 1; s < bp; s++ {
			for g := 0; g < p; g++ {
				fetched := (2*g + s + 1) % bp
				// Who processes `fetched` at sub-epoch s? Nobody should.
				for g2 := 0; g2 < p; g2++ {
					if (2*g2+s)%bp == fetched {
						t.Fatalf("p=%d s=%d: prefetched block %d is being computed by worker %d", p, s, fetched, g2)
					}
				}
				// Worker (g+1)%p processed it at s-1.
				holder := (g + 1) % p
				if (2*holder+s-1)%bp != fetched {
					t.Fatalf("p=%d s=%d g=%d: holder mismatch", p, s, g)
				}
			}
		}
	}
}

func TestStrataConservation(t *testing.T) {
	ds := algotest.Data(t)
	p, bp := 3, 6
	strata := buildStrata(ds, partition.EqualRanges(ds.Rows(), p), partition.EqualRanges(ds.Cols(), bp), p, bp)
	total := 0
	for _, blk := range strata {
		total += len(blk.users)
	}
	if total != ds.Train.NNZ() {
		t.Fatalf("strata hold %d ratings, train has %d", total, ds.Train.NNZ())
	}
}

func TestName(t *testing.T) {
	if New().Name() != "dsgdpp" {
		t.Fatal("wrong name")
	}
}
