package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewRing[int](tc.req).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestRingFullEmptyBoundaries(t *testing.T) {
	r := NewRing[int](4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d into non-full ring failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d => %v,%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from emptied ring succeeded")
	}
	// Refilling after a full drain must work (indices keep running).
	if !r.Push(7) {
		t.Fatal("push after drain failed")
	}
	if v, ok := r.Pop(); !ok || v != 7 {
		t.Fatalf("pop after refill => %v,%v", v, ok)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](8)
	// Drive the indices far past the capacity so every slot wraps many
	// times, interleaving pushes and pops at varying phase.
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 1+round%7; i++ {
			if r.Push(next) {
				next++
			}
		}
		for i := 0; i < 1+(round/2)%5; i++ {
			v, ok := r.Pop()
			if !ok {
				break
			}
			if v != expect {
				t.Fatalf("round %d: popped %d, want %d", round, v, expect)
			}
			expect++
		}
	}
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != expect {
			t.Fatalf("drain: popped %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestRingBatchOps(t *testing.T) {
	r := NewRing[int](8)
	in := []int{0, 1, 2, 3, 4, 5}
	if n := r.PushBatch(in); n != 6 {
		t.Fatalf("PushBatch = %d, want 6", n)
	}
	// Only 2 slots left: a 5-element batch is partially accepted.
	if n := r.PushBatch([]int{6, 7, 8, 9, 10}); n != 2 {
		t.Fatalf("PushBatch into near-full ring = %d, want 2", n)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	out := make([]int, 3)
	if n := r.PopBatch(out); n != 3 || out[0] != 0 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("PopBatch => %d %v", n, out)
	}
	// Pop more than remains: partial batch.
	big := make([]int, 16)
	if n := r.PopBatch(big); n != 5 {
		t.Fatalf("PopBatch of remainder = %d, want 5", n)
	}
	for i, v := range big[:5] {
		if v != i+3 {
			t.Fatalf("drained order wrong at %d: %d", i, v)
		}
	}
	if n := r.PopBatch(big); n != 0 {
		t.Fatalf("PopBatch from empty = %d, want 0", n)
	}
	if n := r.PushBatch(nil); n != 0 {
		t.Fatalf("PushBatch(nil) = %d, want 0", n)
	}
}

func TestRingBatchWraparound(t *testing.T) {
	r := NewRing[int](8)
	next, expect := 0, 0
	buf := make([]int, 5)
	for round := 0; round < 500; round++ {
		in := []int{next, next + 1, next + 2}
		next += r.PushBatch(in)
		n := r.PopBatch(buf[:1+round%5])
		for i := 0; i < n; i++ {
			if buf[i] != expect {
				t.Fatalf("round %d: got %d want %d", round, buf[i], expect)
			}
			expect++
		}
	}
}

// TestRingSPSCConcurrent hammers one producer against one consumer,
// mixing single and batch operations, and checks exact FIFO delivery.
func TestRingSPSCConcurrent(t *testing.T) {
	const total = 40000
	r := NewRing[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for i < total {
			moved := false
			if i%3 == 0 {
				hi := i + 5
				if hi > total {
					hi = total
				}
				batch := make([]int, 0, 5)
				for v := i; v < hi; v++ {
					batch = append(batch, v)
				}
				n := r.PushBatch(batch)
				i += n
				moved = n > 0
			} else if r.Push(i) {
				i++
				moved = true
			}
			if !moved {
				runtime.Gosched() // single-core hosts: let the consumer run
			}
		}
	}()
	buf := make([]int, 7)
	expect := 0
	for expect < total {
		before := expect
		if expect%2 == 0 {
			n := r.PopBatch(buf)
			for i := 0; i < n; i++ {
				if buf[i] != expect {
					t.Fatalf("got %d want %d", buf[i], expect)
				}
				expect++
			}
		} else if v, ok := r.Pop(); ok {
			if v != expect {
				t.Fatalf("got %d want %d", v, expect)
			}
			expect++
		}
		if expect == before {
			runtime.Gosched() // single-core hosts: let the producer run
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after exact-count drain: %d", r.Len())
	}
}

// TestMeshConservation runs p endpoints concurrently, each forwarding
// every received token to a pseudo-random destination, and verifies no
// token is lost or duplicated.
func TestMeshConservation(t *testing.T) {
	const p, tokens, moves = 4, 256, 10000
	m := NewMesh[int](p, 64)
	for tok := 0; tok < tokens; tok++ {
		if !m.Send(tok%p, tok%p, tok) {
			t.Fatalf("seed send %d failed", tok)
		}
	}
	var wg sync.WaitGroup
	var moved atomic.Int64 // global, so no endpoint exits while peers still need its tokens
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			buf := make([]int, 16)
			rnd := uint64(q + 1)
			for moved.Load() < moves {
				n := m.RecvBatch(q, buf)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for i := 0; i < n; i++ {
					rnd = rnd*6364136223846793005 + 1442695040888963407
					dst := int(rnd>>33) % p
					for !m.Send(q, dst, buf[i]) {
						dst = (dst + 1) % p
						runtime.Gosched()
					}
				}
				moved.Add(int64(n))
			}
		}(q)
	}
	wg.Wait()
	got := 0
	for q := 0; q < p; q++ {
		m.Drain(q, func(int) { got++ })
	}
	if got != tokens {
		t.Fatalf("drained %d tokens, seeded %d", got, tokens)
	}
	if m.TotalLen() != 0 {
		t.Fatalf("TotalLen after drain = %d", m.TotalLen())
	}
}

func TestMeshApproxLen(t *testing.T) {
	m := NewMesh[int](3, 16)
	for i := 0; i < 5; i++ {
		m.Send(0, 2, i)
	}
	m.Send(1, 2, 99)
	if got := m.ApproxLen(2); got != 6 {
		t.Fatalf("ApproxLen(2) = %d, want 6", got)
	}
	if got := m.ApproxLen(0); got != 0 {
		t.Fatalf("ApproxLen(0) = %d, want 0", got)
	}
	buf := make([]int, 4)
	if n := m.RecvBatch(2, buf); n != 4 {
		t.Fatalf("RecvBatch = %d, want 4", n)
	}
	if got := m.ApproxLen(2); got != 2 {
		t.Fatalf("ApproxLen(2) after pop = %d, want 2", got)
	}
}

// TestMeshRecvFairness checks the round-robin cursor: a consumer whose
// first lane is always full must still drain the other lanes.
func TestMeshRecvFairness(t *testing.T) {
	m := NewMesh[int](3, 8)
	// Lane (0, src) gets tokens from every src.
	for src := 0; src < 3; src++ {
		for i := 0; i < 8; i++ {
			m.Send(src, 0, src*100+i)
		}
	}
	seen := map[int]bool{}
	buf := make([]int, 4)
	for len(seen) < 24 {
		n := m.RecvBatch(0, buf)
		if n == 0 {
			t.Fatalf("mesh dried up with %d of 24 tokens seen", len(seen))
		}
		for _, v := range buf[:n] {
			if seen[v] {
				t.Fatalf("token %d delivered twice", v)
			}
			seen[v] = true
		}
	}
}

func TestMeshDrainOrder(t *testing.T) {
	m := NewMesh[int](2, 8)
	// Drain must walk lanes src 0..p-1, FIFO within each.
	m.Send(0, 1, 10)
	m.Send(0, 1, 11)
	m.Send(1, 1, 20)
	var got []int
	m.Drain(1, func(v int) { got = append(got, v) })
	want := []int{10, 11, 20}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestKindResolve(t *testing.T) {
	defer SetReferenceTransport(ReferenceTransport())
	SetReferenceTransport(false)
	if got := KindAuto.Resolve(); got != KindSPSC {
		t.Errorf("KindAuto resolves to %v, want spsc", got)
	}
	SetReferenceTransport(true)
	if got := KindAuto.Resolve(); got != KindMutex {
		t.Errorf("KindAuto under reference transport resolves to %v, want mutex", got)
	}
	if got := KindChan.Resolve(); got != KindChan {
		t.Errorf("explicit kind rewritten to %v", got)
	}
}

func TestKindByName(t *testing.T) {
	for name, want := range map[string]Kind{
		"": KindAuto, "auto": KindAuto, "mutex": KindMutex,
		"lockfree": KindLockFree, "chan": KindChan, "spsc": KindSPSC,
	} {
		got, err := KindByName(name)
		if err != nil || got != want {
			t.Errorf("KindByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("KindByName accepted bogus name")
	}
}

// BenchmarkRingBatchTransfer is the transport microbench of the
// worker-scaling harness: tokens/s through one SPSC lane in blocks.
func BenchmarkRingBatchTransfer(b *testing.B) {
	r := NewRing[int32](1 << 12)
	const block = 64
	in := make([]int32, block)
	out := make([]int32, block)
	done := make(chan struct{})
	go func() {
		defer close(done)
		moved := 0
		for moved < b.N {
			moved += r.PopBatch(out)
		}
	}()
	for pushed := 0; pushed < b.N; {
		pushed += r.PushBatch(in)
	}
	<-done
}
