package queue

import (
	"sync"
	"testing"
)

var kinds = []Kind{KindMutex, KindLockFree, KindChan}

func TestFIFOSingleThread(t *testing.T) {
	for _, k := range kinds {
		q := New[int](k, 8)
		for i := 0; i < 100; i++ {
			q.Push(i)
		}
		if q.Len() != 100 {
			t.Fatalf("%v: Len = %d, want 100", k, q.Len())
		}
		for i := 0; i < 100; i++ {
			v, ok := q.TryPop()
			if !ok || v != i {
				t.Fatalf("%v: pop %d => %v,%v", k, i, v, ok)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Fatalf("%v: pop from empty succeeded", k)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	for _, k := range kinds {
		q := New[string](k, 4)
		if v, ok := q.TryPop(); ok || v != "" {
			t.Fatalf("%v: empty queue returned %q,%v", k, v, ok)
		}
	}
}

func TestRingGrowth(t *testing.T) {
	q := New[int](KindMutex, 4)
	// Interleave pushes and pops so head wraps, then force growth.
	for i := 0; i < 3; i++ {
		q.Push(i)
	}
	q.TryPop()
	q.TryPop()
	for i := 3; i < 50; i++ {
		q.Push(i)
	}
	want := 2
	for q.Len() > 0 {
		v, _ := q.TryPop()
		if v != want {
			t.Fatalf("after growth: got %d want %d", v, want)
		}
		want++
	}
	if want != 50 {
		t.Fatalf("drained %d elements, want 48", want-2)
	}
}

// TestNoLostElements hammers each queue with concurrent producers and
// consumers and checks that every pushed element is popped exactly once.
func TestNoLostElements(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 5000
	for _, k := range kinds {
		q := New[int](k, producers*perProducer)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					q.Push(p*perProducer + i)
				}
			}(p)
		}
		results := make(chan int, producers*perProducer)
		var cg sync.WaitGroup
		done := make(chan struct{})
		for c := 0; c < consumers; c++ {
			cg.Add(1)
			go func() {
				defer cg.Done()
				for {
					if v, ok := q.TryPop(); ok {
						results <- v
						continue
					}
					select {
					case <-done:
						// Final drain after producers finish.
						for {
							v, ok := q.TryPop()
							if !ok {
								return
							}
							results <- v
						}
					default:
					}
				}
			}()
		}
		wg.Wait()
		close(done)
		cg.Wait()
		close(results)
		seen := make([]bool, producers*perProducer)
		count := 0
		for v := range results {
			if seen[v] {
				t.Fatalf("%v: element %d popped twice", k, v)
			}
			seen[v] = true
			count++
		}
		if count != producers*perProducer {
			t.Fatalf("%v: popped %d of %d elements", k, count, producers*perProducer)
		}
	}
}

// TestPerProducerOrder verifies FIFO order is preserved per producer
// even under concurrency (a property both ring and MS queues give).
func TestPerProducerOrder(t *testing.T) {
	for _, k := range kinds {
		q := New[[2]int](k, 1<<14)
		const producers, perProducer = 3, 3000
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					q.Push([2]int{p, i})
				}
			}(p)
		}
		wg.Wait()
		last := make([]int, producers)
		for i := range last {
			last[i] = -1
		}
		for {
			v, ok := q.TryPop()
			if !ok {
				break
			}
			if v[1] <= last[v[0]] {
				t.Fatalf("%v: producer %d out of order: %d after %d", k, v[0], v[1], last[v[0]])
			}
			last[v[0]] = v[1]
		}
		for p, l := range last {
			if l != perProducer-1 {
				t.Fatalf("%v: producer %d only drained to %d", k, p, l)
			}
		}
	}
}

func TestLenTracksApproximately(t *testing.T) {
	for _, k := range kinds {
		q := New[int](k, 64)
		for i := 0; i < 10; i++ {
			q.Push(i)
		}
		if q.Len() != 10 {
			t.Fatalf("%v: Len = %d want 10", k, q.Len())
		}
		q.TryPop()
		if q.Len() != 9 {
			t.Fatalf("%v: Len = %d want 9", k, q.Len())
		}
	}
}

func TestKindString(t *testing.T) {
	if KindAuto.String() != "auto" || KindMutex.String() != "mutex" ||
		KindLockFree.String() != "lockfree" || KindChan.String() != "chan" ||
		KindSPSC.String() != "spsc" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

// New must resolve KindAuto (and fall back for KindSPSC, which is not
// an MPMC queue) rather than hand back a nil implementation.
func TestNewResolvesNonQueueKinds(t *testing.T) {
	for _, k := range []Kind{KindAuto, KindSPSC} {
		q := New[int](k, 8)
		q.Push(1)
		if v, ok := q.TryPop(); !ok || v != 1 {
			t.Fatalf("kind %v: queue does not work: %v %v", k, v, ok)
		}
	}
}

func benchQueue(b *testing.B, k Kind) {
	q := New[int](k, 1<<16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				q.Push(i)
			} else {
				q.TryPop()
			}
			i++
		}
	})
}

func BenchmarkMutexQueue(b *testing.B)    { benchQueue(b, KindMutex) }
func BenchmarkLockFreeQueue(b *testing.B) { benchQueue(b, KindLockFree) }
func BenchmarkChanQueue(b *testing.B)     { benchQueue(b, KindChan) }
