package queue

import (
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer FIFO ring buffer.
// Capacity is rounded up to a power of two so positions wrap with a
// mask instead of a modulo; head and tail live on separate cache lines
// so the producer and consumer never false-share. Steady-state
// operation allocates nothing.
//
// Exactly one goroutine may push and exactly one may pop at a time;
// the two may run concurrently. A full drain (Pop until empty) is safe
// from any single goroutine once producers have stopped.
type Ring[T any] struct {
	buf  []T
	mask uint64

	_ [cacheLinePad]byte
	// head is the next unread slot, advanced by the consumer. The
	// consumer caches the producer's tail to avoid one atomic load per
	// op in the common non-empty case.
	head       atomic.Uint64
	cachedTail uint64

	_ [cacheLinePad]byte
	// tail is the next free slot, advanced by the producer, which
	// symmetrically caches the consumer's head.
	tail       atomic.Uint64
	cachedHead uint64

	_ [cacheLinePad]byte
}

// cacheLinePad separates producer- and consumer-owned fields. 128
// bytes covers adjacent-line prefetchers on current x86 parts.
const cacheLinePad = 128

// NewRing returns an empty ring holding at least capacity elements.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 2 {
		capacity = 2
	}
	c := uint64(1)
	for c < uint64(capacity) {
		c <<= 1
	}
	return &Ring[T]{buf: make([]T, c), mask: c - 1}
}

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current element count. It is exact when the ring is
// quiescent and approximate (never negative) under concurrency.
func (r *Ring[T]) Len() int {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// Push appends v and reports whether there was room.
//
//nomad:noalloc
func (r *Ring[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead == uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead == uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop removes and returns the oldest element, or reports false if the
// ring is (momentarily) empty.
//
//nomad:noalloc
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release references for GC
	r.head.Store(h + 1)
	return v, true
}

// PushBatch appends as many elements of vs as fit, in order, and
// returns how many were accepted. One atomic release publishes the
// whole batch.
//
//nomad:noalloc
func (r *Ring[T]) PushBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (t - r.cachedHead)
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(t+uint64(i))&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(t + uint64(n))
	}
	return n
}

// PopBatch removes up to len(dst) oldest elements into dst, in order,
// and returns how many were moved. One atomic release frees the whole
// batch.
//
//nomad:noalloc
func (r *Ring[T]) PopBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	h := r.head.Load()
	avail := r.cachedTail - h
	if avail < uint64(len(dst)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - h
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	var zero T
	for i := 0; i < n; i++ {
		p := (h + uint64(i)) & r.mask
		dst[i] = r.buf[p]
		r.buf[p] = zero
	}
	if n > 0 {
		r.head.Store(h + uint64(n))
	}
	return n
}

// paddedInt64 is an atomic counter on its own cache line, so the
// per-destination length gossip of a Mesh never false-shares.
type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLinePad - 8]byte
}

// Mesh is the batched token transport: a p×p grid of SPSC rings where
// ring (dst, src) carries tokens from endpoint src to endpoint dst.
// Each endpoint owns one consumer role (its row) and one producer role
// per destination (its column), so every ring has exactly one producer
// and one consumer and no operation ever takes a lock or allocates.
//
// Per-destination backlog estimates are kept in cache-line-padded
// atomics, updated with one Add per batch; ApproxLen is a single
// atomic load, which is what NOMAD's §3.3 load-balance gossip reads in
// place of the two queue-lock probes of the MPMC transports.
type Mesh[T any] struct {
	p     int
	rings []*Ring[T]    // rings[dst*p+src]
	lens  []paddedInt64 // approximate backlog per destination
	curs  []paddedInt64 // consumer round-robin cursor per destination
}

// NewMesh returns a p×p mesh whose rings hold at least ringCap
// elements each.
func NewMesh[T any](p, ringCap int) *Mesh[T] {
	if p < 1 {
		p = 1
	}
	m := &Mesh[T]{
		p:     p,
		rings: make([]*Ring[T], p*p),
		lens:  make([]paddedInt64, p),
		curs:  make([]paddedInt64, p),
	}
	for i := range m.rings {
		m.rings[i] = NewRing[T](ringCap)
	}
	return m
}

// P returns the endpoint count.
func (m *Mesh[T]) P() int { return m.p }

// RingCap returns the per-lane ring capacity.
func (m *Mesh[T]) RingCap() int { return m.rings[0].Cap() }

// Send enqueues v from src to dst and reports whether the lane had
// room. Only endpoint src may call it for a given src.
//
//nomad:noalloc
func (m *Mesh[T]) Send(src, dst int, v T) bool {
	if !m.rings[dst*m.p+src].Push(v) {
		return false
	}
	m.lens[dst].v.Add(1)
	return true
}

// SendBatch enqueues as many elements of vs as fit from src to dst, in
// order, returning how many were accepted.
//
//nomad:noalloc
func (m *Mesh[T]) SendBatch(src, dst int, vs []T) int {
	n := m.rings[dst*m.p+src].PushBatch(vs)
	if n > 0 {
		m.lens[dst].v.Add(int64(n))
	}
	return n
}

// RecvBatch dequeues up to len(dst) elements addressed to endpoint d,
// sweeping the row's lanes round-robin from where the previous call
// stopped so no producer is starved. Only endpoint d may call it.
//
//nomad:noalloc
func (m *Mesh[T]) RecvBatch(d int, dst []T) int {
	row := m.rings[d*m.p : (d+1)*m.p]
	start := int(m.curs[d].v.Load())
	got := 0
	for i := 0; i < m.p && got < len(dst); i++ {
		lane := start + i
		if lane >= m.p {
			lane -= m.p
		}
		n := row[lane].PopBatch(dst[got:])
		got += n
		if got == len(dst) {
			// Batch filled mid-sweep: resume at the NEXT lane so a lane
			// that a fast producer keeps full cannot starve the others.
			next := lane + 1
			if next >= m.p {
				next = 0
			}
			m.curs[d].v.Store(int64(next))
		}
	}
	if got > 0 {
		m.lens[d].v.Add(int64(-got))
	}
	return got
}

// ApproxLen returns the approximate backlog of endpoint d: one atomic
// load, no locks. The value is what §3.3 least-loaded routing compares.
//
//nomad:noalloc
func (m *Mesh[T]) ApproxLen(d int) int { return int(m.lens[d].v.Load()) }

// TotalLen returns the approximate total number of tokens in the mesh.
//
//nomad:noalloc
func (m *Mesh[T]) TotalLen() int {
	n := 0
	for d := 0; d < m.p; d++ {
		n += m.ApproxLen(d)
	}
	return n
}

// Drain removes every element addressed to endpoint d, in lane order
// (src 0..p-1, FIFO within each lane), calling fn for each. It must
// only run after all producers have stopped.
func (m *Mesh[T]) Drain(d int, fn func(T)) {
	n := 0
	for src := 0; src < m.p; src++ {
		ring := m.rings[d*m.p+src]
		for {
			v, ok := ring.Pop()
			if !ok {
				break
			}
			fn(v)
			n++
		}
	}
	if n > 0 {
		m.lens[d].v.Add(int64(-n))
	}
}
