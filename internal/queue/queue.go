// Package queue provides the concurrent work queues that carry NOMAD's
// nomadic item tokens between workers.
//
// The original implementation used Intel TBB's concurrent_queue, which
// the paper notes is "technically not lock-free" but scales nearly
// linearly (§3.5). This package offers interchangeable implementations
// so the choice can be ablated:
//
//   - SPSC: a mesh of bounded single-producer single-consumer rings
//     with batch push/pop (the default; see Mesh in spsc.go),
//   - Mutex: a mutex-protected growable ring buffer (like TBB's queue
//     it takes a lock but the critical section is tiny),
//   - LockFree: a Michael–Scott linked queue built on atomic pointers,
//   - Chan: a buffered Go channel.
//
// The MPMC kinds (Mutex, LockFree, Chan) implement Queue; the SPSC
// kind is a Mesh, which the workers drive through block operations.
// All of them report an approximate length, which NOMAD's dynamic load
// balancing (§3.3) uses to route tokens toward lightly loaded workers.
//
// Setting NOMAD_REFERENCE_TRANSPORT=1 in the environment makes KindAuto
// resolve to the legacy mutex queue instead of the SPSC mesh — the
// in-tree A/B switch for benchmarking the batched transport, in the
// style of vecmath's NOMAD_REFERENCE_KERNELS.
package queue

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Queue is a concurrent FIFO queue of T.
type Queue[T any] interface {
	// Push appends v.
	Push(v T)
	// TryPop removes and returns the oldest element, or reports false
	// if the queue is (momentarily) empty.
	TryPop() (T, bool)
	// Len returns the current number of elements. The value is
	// approximate under concurrency and intended for load balancing.
	Len() int
}

// Kind selects a token-transport implementation.
type Kind int

const (
	// KindAuto (the zero value) resolves to KindSPSC, or to KindMutex
	// when NOMAD_REFERENCE_TRANSPORT is set (the benchmark A/B switch).
	KindAuto Kind = iota
	// KindMutex is the mutex-protected ring buffer (the legacy default).
	KindMutex
	// KindLockFree is the Michael–Scott CAS-based linked queue.
	KindLockFree
	// KindChan is a buffered channel.
	KindChan
	// KindSPSC is the batched SPSC ring mesh (see Mesh).
	KindSPSC
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindAuto:
		return "auto"
	case KindMutex:
		return "mutex"
	case KindLockFree:
		return "lockfree"
	case KindChan:
		return "chan"
	case KindSPSC:
		return "spsc"
	default:
		return "unknown"
	}
}

// KindByName parses a kind name as accepted by the Session API and
// nomad-bench: "auto", "mutex", "lockfree", "chan" or "spsc".
func KindByName(name string) (Kind, error) {
	switch name {
	case "", "auto":
		return KindAuto, nil
	case "mutex":
		return KindMutex, nil
	case "lockfree":
		return KindLockFree, nil
	case "chan":
		return KindChan, nil
	case "spsc":
		return KindSPSC, nil
	default:
		return KindAuto, fmt.Errorf("queue: unknown transport %q (auto, mutex, lockfree, chan, spsc)", name)
	}
}

// referenceTransport pins KindAuto to the legacy mutex queue so the
// batched transport can be A/B-measured against it in one process.
var referenceTransport = os.Getenv("NOMAD_REFERENCE_TRANSPORT") != ""

// ReferenceTransport reports whether KindAuto currently resolves to
// the legacy mutex transport.
func ReferenceTransport() bool { return referenceTransport }

// SetReferenceTransport overrides the NOMAD_REFERENCE_TRANSPORT switch
// at runtime, for benchmark harnesses that interleave both transports
// in one process. Not safe to flip while a training run is in flight.
func SetReferenceTransport(v bool) { referenceTransport = v }

// Resolve maps KindAuto to the concrete default transport and returns
// every other kind unchanged.
func (k Kind) Resolve() Kind {
	if k != KindAuto {
		return k
	}
	if referenceTransport {
		return KindMutex
	}
	return KindSPSC
}

// New returns a new MPMC queue of the given kind. capacityHint sizes
// the initial ring buffer or channel; the mutex and lock-free queues
// grow without bound, while the channel queue blocks producers at 4×
// the hint (so the hint should be generous for KindChan). KindAuto
// resolves first; KindSPSC is not an MPMC queue (use NewMesh) and
// falls back to the mutex queue here.
func New[T any](kind Kind, capacityHint int) Queue[T] {
	if capacityHint < 4 {
		capacityHint = 4
	}
	switch kind.Resolve() {
	case KindLockFree:
		return newLockFree[T]()
	case KindChan:
		c := 4 * capacityHint
		if c < 1024 {
			c = 1024
		}
		return &chanQueue[T]{ch: make(chan T, c)}
	default:
		return &mutexQueue[T]{buf: make([]T, capacityHint)}
	}
}

// mutexQueue is a growable ring buffer guarded by a mutex. The length
// is mirrored into an atomic so Len — which load-balance routing probes
// on every token, for queues other than the caller's own — never takes
// the lock.
type mutexQueue[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
	n    int
	size atomic.Int64
}

// Push implements Queue.
func (q *mutexQueue[T]) Push(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.size.Store(int64(q.n))
	q.mu.Unlock()
}

// grow doubles the ring capacity. Caller holds the lock.
func (q *mutexQueue[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// TryPop implements Queue.
func (q *mutexQueue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.size.Store(int64(q.n))
	q.mu.Unlock()
	return v, true
}

// Len implements Queue. Lock-free: it reads the mirrored atomic, so a
// routing probe never contends with the owner's push/pop.
func (q *mutexQueue[T]) Len() int { return int(q.size.Load()) }

// lockFree is a Michael–Scott two-lock-free linked queue.
type lockFree[T any] struct {
	head atomic.Pointer[lfNode[T]]
	tail atomic.Pointer[lfNode[T]]
	size atomic.Int64
}

type lfNode[T any] struct {
	next atomic.Pointer[lfNode[T]]
	val  T
}

func newLockFree[T any]() *lockFree[T] {
	q := &lockFree[T]{}
	sentinel := &lfNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Push implements Queue.
func (q *lockFree[T]) Push(v T) {
	n := &lfNode[T]{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// TryPop implements Queue.
func (q *lockFree[T]) TryPop() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return zero, false
		}
		if head == tail {
			// Tail lagging behind; help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.val
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len implements Queue.
func (q *lockFree[T]) Len() int { return int(q.size.Load()) }

// chanQueue adapts a buffered channel to the Queue interface. Push
// blocks if the channel is full, which bounds memory but can deadlock
// pathological routing patterns; it exists for the ablation benchmark.
type chanQueue[T any] struct {
	ch chan T
}

// Push implements Queue.
func (q *chanQueue[T]) Push(v T) { q.ch <- v }

// TryPop implements Queue.
func (q *chanQueue[T]) TryPop() (T, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Len implements Queue.
func (q *chanQueue[T]) Len() int { return len(q.ch) }
