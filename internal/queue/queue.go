// Package queue provides the concurrent work queues that carry NOMAD's
// nomadic item tokens between workers.
//
// The original implementation used Intel TBB's concurrent_queue, which
// the paper notes is "technically not lock-free" but scales nearly
// linearly (§3.5). This package offers three interchangeable
// implementations so the choice can be ablated:
//
//   - Mutex: a mutex-protected growable ring buffer (the default; like
//     TBB's queue it takes a lock but the critical section is tiny),
//   - LockFree: a Michael–Scott linked queue built on atomic pointers,
//   - Chan: a buffered Go channel.
//
// All of them are multi-producer multi-consumer and report an
// approximate length, which NOMAD's dynamic load balancing (§3.3) uses
// to route tokens toward lightly loaded workers.
package queue

import (
	"sync"
	"sync/atomic"
)

// Queue is a concurrent FIFO queue of T.
type Queue[T any] interface {
	// Push appends v.
	Push(v T)
	// TryPop removes and returns the oldest element, or reports false
	// if the queue is (momentarily) empty.
	TryPop() (T, bool)
	// Len returns the current number of elements. The value is
	// approximate under concurrency and intended for load balancing.
	Len() int
}

// Kind selects a Queue implementation.
type Kind int

const (
	// KindMutex is the mutex-protected ring buffer (default).
	KindMutex Kind = iota
	// KindLockFree is the Michael–Scott CAS-based linked queue.
	KindLockFree
	// KindChan is a buffered channel.
	KindChan
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindMutex:
		return "mutex"
	case KindLockFree:
		return "lockfree"
	case KindChan:
		return "chan"
	default:
		return "unknown"
	}
}

// New returns a new queue of the given kind. capacityHint sizes the
// initial ring buffer or channel; the mutex and lock-free queues grow
// without bound, while the channel queue blocks producers at 4× the
// hint (so the hint should be generous for KindChan).
func New[T any](kind Kind, capacityHint int) Queue[T] {
	if capacityHint < 4 {
		capacityHint = 4
	}
	switch kind {
	case KindLockFree:
		return newLockFree[T]()
	case KindChan:
		c := 4 * capacityHint
		if c < 1024 {
			c = 1024
		}
		return &chanQueue[T]{ch: make(chan T, c)}
	default:
		return &mutexQueue[T]{buf: make([]T, capacityHint)}
	}
}

// mutexQueue is a growable ring buffer guarded by a mutex.
type mutexQueue[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
	n    int
}

// Push implements Queue.
func (q *mutexQueue[T]) Push(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.mu.Unlock()
}

// grow doubles the ring capacity. Caller holds the lock.
func (q *mutexQueue[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// TryPop implements Queue.
func (q *mutexQueue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	return v, true
}

// Len implements Queue.
func (q *mutexQueue[T]) Len() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n
}

// lockFree is a Michael–Scott two-lock-free linked queue.
type lockFree[T any] struct {
	head atomic.Pointer[lfNode[T]]
	tail atomic.Pointer[lfNode[T]]
	size atomic.Int64
}

type lfNode[T any] struct {
	next atomic.Pointer[lfNode[T]]
	val  T
}

func newLockFree[T any]() *lockFree[T] {
	q := &lockFree[T]{}
	sentinel := &lfNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Push implements Queue.
func (q *lockFree[T]) Push(v T) {
	n := &lfNode[T]{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// TryPop implements Queue.
func (q *lockFree[T]) TryPop() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return zero, false
		}
		if head == tail {
			// Tail lagging behind; help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.val
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len implements Queue.
func (q *lockFree[T]) Len() int { return int(q.size.Load()) }

// chanQueue adapts a buffered channel to the Queue interface. Push
// blocks if the channel is full, which bounds memory but can deadlock
// pathological routing patterns; it exists for the ablation benchmark.
type chanQueue[T any] struct {
	ch chan T
}

// Push implements Queue.
func (q *chanQueue[T]) Push(v T) { q.ch <- v }

// TryPop implements Queue.
func (q *chanQueue[T]) TryPop() (T, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Len implements Queue.
func (q *chanQueue[T]) Len() int { return len(q.ch) }
