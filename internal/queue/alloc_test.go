package queue

// Zero-allocation assertions for the SPSC ring: the token transport's
// push/pop hot path must never allocate in steady state — it moves
// millions of tokens per second, so even one object per operation
// would make the data plane GC-bound.

import "testing"

func TestRingPushPopAllocFree(t *testing.T) {
	r := NewRing[int64](64)
	allocs := testing.AllocsPerRun(1000, func() {
		if !r.Push(42) {
			t.Fatal("push into empty ring failed")
		}
		if _, ok := r.Pop(); !ok {
			t.Fatal("pop from non-empty ring failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ring Push/Pop allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRingBatchAllocFree(t *testing.T) {
	r := NewRing[int64](256)
	src := make([]int64, 64)
	dst := make([]int64, 64)
	for i := range src {
		src[i] = int64(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if n := r.PushBatch(src); n != len(src) {
			t.Fatalf("PushBatch accepted %d of %d", n, len(src))
		}
		if n := r.PopBatch(dst); n != len(dst) {
			t.Fatalf("PopBatch moved %d of %d", n, len(dst))
		}
	})
	if allocs != 0 {
		t.Fatalf("ring PushBatch/PopBatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMeshSendRecvAllocFree(t *testing.T) {
	m := NewMesh[int64](2, 256)
	buf := make([]int64, 64)
	for i := range buf {
		buf[i] = int64(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if n := m.SendBatch(0, 1, buf); n != len(buf) {
			t.Fatalf("SendBatch accepted %d of %d", n, len(buf))
		}
		if n := m.RecvBatch(1, buf); n != len(buf) {
			t.Fatalf("RecvBatch moved %d of %d", n, len(buf))
		}
	})
	if allocs != 0 {
		t.Fatalf("mesh SendBatch/RecvBatch allocates %.1f objects/op, want 0", allocs)
	}
}
