module nomad

go 1.23
