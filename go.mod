module nomad

go 1.24
