package nomad

// Session-level coverage of the real-network cluster surface: option
// validation for the tcp backend and address lists, loopback runs
// (async and lockstep) through the public API, cross-backend RMSE
// parity, and the typed peer-failure error.

import (
	"context"
	"errors"
	"testing"

	"nomad/internal/cluster"
)

func TestWithClusterAddressValidation(t *testing.T) {
	d := synthSmall(t)
	bad := map[string]Option{
		"addrs on sim network":   WithCluster(2, "hpc", ":7070"),
		"three addresses":        WithCluster(2, "tcp", ":1", ":2", ":3"),
		"coordinator 1 machine":  WithCluster(1, "tcp", ":7070"),
		"negative machines":      WithCluster(-1, "tcp", ":0", "host:7070"),
		"loopback zero machines": WithCluster(0, "tcp"),
	}
	for name, opt := range bad {
		if _, err := NewSession(d, opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	good := map[string]Option{
		"loopback":    WithCluster(3, "tcp"),
		"coordinator": WithCluster(4, "tcp", ":7070"),
		"worker":      WithCluster(0, "tcp", ":0", "host:7070"),
	}
	for name, opt := range good {
		if _, err := NewSession(d, opt); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	// Only the nomad solver implements the real-socket backend and the
	// lockstep runners — accepting them for a baseline would silently
	// train independent local runs instead of a cluster.
	for name, opts := range map[string][]Option{
		"dsgd over tcp":       {WithAlgorithm("dsgd"), WithCluster(3, "tcp")},
		"dsgd as coordinator": {WithAlgorithm("dsgd"), WithCluster(4, "tcp", ":7070")},
		"hogwild lockstep":    {WithAlgorithm("hogwild"), WithLockstep()},
	} {
		if _, err := NewSession(d, opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSessionTCPLoopbackRun trains over the real-socket backend inside
// one process, through the public facade.
func TestSessionTCPLoopbackRun(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d,
		WithCluster(3, "tcp"),
		WithWorkers(2),
		WithSeed(5),
		WithStopConditions(MaxEpochs(3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent == 0 || res.MessagesSent == 0 {
		t.Fatalf("no wire traffic accounted: %+v", res)
	}
	if res.TestRMSE <= 0 || res.TestRMSE > 2 {
		t.Fatalf("implausible RMSE %v", res.TestRMSE)
	}
}

// TestSessionLockstepParityAcrossBackends is the public-API version of
// the cross-backend guarantee: identical RMSE from the simulated
// network and from real TCP sockets under WithLockstep.
func TestSessionLockstepParityAcrossBackends(t *testing.T) {
	d := synthSmall(t)
	run := func(network string) float64 {
		t.Helper()
		s, err := NewSession(d,
			WithCluster(3, network),
			WithWorkers(2),
			WithLockstep(),
			WithSeed(5),
			WithStopConditions(MaxEpochs(2)),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.TestRMSE
	}
	sim := run("instant")
	tcp := run("tcp")
	if sim != tcp {
		t.Fatalf("lockstep RMSE differs across backends: sim %v, tcp %v", sim, tcp)
	}
}

func TestPeerErrorWrapsTransportFailure(t *testing.T) {
	cause := errors.New("connection reset")
	err := publicError(&cluster.PeerDownError{Rank: 2, Cause: cause})
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("publicError = %T, want *PeerError", err)
	}
	if pe.Rank != 2 || !errors.Is(pe, cause) {
		t.Fatalf("PeerError = %+v", pe)
	}
	if publicError(nil) != nil {
		t.Fatal("publicError(nil) != nil")
	}
	plain := errors.New("something else")
	if publicError(plain) != plain {
		t.Fatal("unrelated errors must pass through")
	}
}
