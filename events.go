package nomad

// Typed events streamed by a running Session. Subscribe with
// Session.Subscribe; every event is one of the concrete types below.
//
// Events are emitted from training-internal goroutines and delivered
// over buffered channels without blocking: a subscriber that falls
// behind loses the oldest pending events rather than stalling the run
// (training throughput is the product's headline number and is never
// sacrificed to observability).

// Event is a typed notification from a running training session.
// Switch on the concrete type:
//
//	switch e := ev.(type) {
//	case nomad.TraceEvent:    // convergence sample
//	case nomad.EpochEvent:    // sweep boundary
//	case nomad.BalanceEvent:  // §3.3 load-balance routing decision
//	case nomad.NetworkEvent:  // network accounting (sim or tcp)
//	case nomad.PeerDownEvent: // cluster machine failure (tcp backend)
//	}
type Event interface {
	event() // sealed: only this package defines events
}

// TraceEvent is one convergence sample — the axes of every figure in
// the paper: wall-clock seconds since Run started, cumulative SGD
// updates (spanning resumed segments), and test RMSE.
type TraceEvent struct {
	Seconds float64
	Updates int64
	RMSE    float64
}

// EpochEvent marks the completion of (approximately) one sweep over
// the training ratings. Synchronous solvers emit it at their true
// epoch barrier; asynchronous solvers when the update count crosses an
// epoch-sized multiple.
type EpochEvent struct {
	Epoch   int // 1-based
	Updates int64
}

// BalanceEvent records one §3.3 dynamic load-balancing decision on the
// distributed token-routing path: machine From routed its next token
// batch to the least-loaded known peer To, whose last gossiped queue
// length was QueueLen.
type BalanceEvent struct {
	From, To int
	QueueLen int64
}

// NetworkEvent reports cumulative network accounting for
// multi-machine runs: modelled bytes on the simulated backend, real
// wire bytes on the TCP backend.
type NetworkEvent struct {
	BytesSent    int64
	MessagesSent int64
}

// PeerDownEvent reports a cluster machine failure on the real-network
// backend: machine Rank stopped responding — its connection broke
// without an orderly end-of-stream, or its heartbeats timed out.
// Without WithFailover the run aborts shortly after with a *PeerError
// from Run; with it, the survivors reconfigure and a
// PeerRecoveredEvent follows.
type PeerDownEvent struct {
	Rank   int
	Reason string
}

// PeerRecoveredEvent reports a completed failover (WithFailover):
// dead machine Rank's item tokens were regenerated on its ring buddy,
// its user rows adopted, and token circulation resumed among the
// survivors. RecoverySeconds is the detection→resume latency.
type PeerRecoveredEvent struct {
	Rank            int
	RecoverySeconds float64
}

// ResizeEvent reports a committed elastic-membership change on a run
// with provisioned spares (WithElastic): a spare machine was activated
// ("join") or a member left gracefully ("drain"), with every item
// token conserved across the change. Machines is the active working
// set after the change; Seconds is the request→resume reconfiguration
// latency (a joiner keeps receiving its donated token share on the
// data plane after resume).
type ResizeEvent struct {
	Kind     string // "join" or "drain"
	Rank     int
	Machines int
	Seconds  float64
}

func (TraceEvent) event()         {}
func (EpochEvent) event()         {}
func (BalanceEvent) event()       {}
func (NetworkEvent) event()       {}
func (PeerDownEvent) event()      {}
func (PeerRecoveredEvent) event() {}
func (ResizeEvent) event()        {}
