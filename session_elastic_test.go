package nomad

// Public-API coverage of elastic membership: WithElastic validation,
// the Resize handle's live join/drain triggers, and the ResizeEvent
// stream — the session-level face of the core elasticity matrix.

import (
	"context"
	"testing"
	"time"
)

func TestWithElasticValidation(t *testing.T) {
	d := synthSmall(t)
	bad := map[string][]Option{
		"negative spares":  {WithElastic(-1)},
		"elastic lockstep": {WithElastic(1), WithLockstep()},
		"elastic baseline": {WithAlgorithm("dsgd"), WithElastic(1)},
		"elastic worker":   {WithElastic(1), WithCluster(0, "tcp", ":0", "host:7070")},
	}
	for name, opts := range bad {
		if _, err := NewSession(d, opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewSession(d, WithElastic(1), WithCluster(3, "instant")); err != nil {
		t.Errorf("elastic sim cluster rejected: %v", err)
	}

	// Outside a live elastic run the handle fails typed, never blocks.
	s, err := NewSession(d, WithElastic(1), WithCluster(3, "instant"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resize().Join(-1); err == nil {
		t.Error("Join before Run returned nil")
	}
	if err := s.Resize().Drain(-1); err == nil {
		t.Error("Drain before Run returned nil")
	}
}

// TestSessionElasticResize grows and then shrinks a live run through
// the public Resize handle and observes both committed changes on the
// event stream.
func TestSessionElasticResize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elastic run")
	}
	d := synthSmall(t)
	s, err := NewSession(d,
		WithElastic(1),
		WithCluster(3, "instant"),
		WithWorkers(2),
		WithSeed(5),
		// A budget far beyond what the test needs: the run must still be
		// live when the triggers fire even on a heavily loaded box, and
		// the cancel below ends it right after the drain commits.
		WithStopConditions(MaxEpochs(5000)),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, cancelSub := s.Subscribe(256)
	defer cancelSub()

	resizes := make(chan ResizeEvent, 4)
	started := make(chan struct{})
	go func() {
		var once bool
		for e := range events {
			switch ev := e.(type) {
			case TraceEvent:
				if !once {
					once = true
					close(started)
				}
			case ResizeEvent:
				resizes <- ev
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(ctx)
		done <- err
	}()

	await := func(what string, ch <-chan ResizeEvent) ResizeEvent {
		t.Helper()
		select {
		case ev := <-ch:
			return ev
		case <-time.After(time.Minute):
			t.Fatalf("no %s ResizeEvent within a minute", what)
		}
		return ResizeEvent{}
	}

	<-started
	if err := s.Resize().Join(-1); err != nil {
		t.Fatalf("live Join: %v", err)
	}
	j := await("join", resizes)
	if j.Kind != "join" || j.Rank != 3 || j.Machines != 4 {
		t.Fatalf("join event %+v, want rank 3 → 4 machines", j)
	}
	if err := s.Resize().Drain(-1); err != nil {
		t.Fatalf("live Drain: %v", err)
	}
	dr := await("drain", resizes)
	if dr.Kind != "drain" || dr.Machines != 3 {
		t.Fatalf("drain event %+v, want 3 machines after", dr)
	}

	cancel() // the membership changes are observed; no need to finish the budget
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("elastic run failed: %v", err)
	}
}
