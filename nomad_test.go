package nomad

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func synthSmall(t *testing.T) *Dataset {
	t.Helper()
	d, err := Synthesize("netflix", 0.0002, 9)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSynthesizeShapes(t *testing.T) {
	d := synthSmall(t)
	if d.Users() <= 0 || d.Items() <= 0 || d.TrainSize() == 0 || d.TestSize() == 0 {
		t.Fatalf("degenerate dataset: %d users %d items %d train %d test",
			d.Users(), d.Items(), d.TrainSize(), d.TestSize())
	}
}

func TestSynthesizeUnknownProfile(t *testing.T) {
	if _, err := Synthesize("ml-100k", 1, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestTrainDefaultAlgorithm(t *testing.T) {
	d := synthSmall(t)
	res, err := Train(d, Config{Epochs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "nomad" {
		t.Fatalf("default algorithm = %q", res.Algorithm)
	}
	if math.IsNaN(res.TestRMSE) || res.TestRMSE <= 0 {
		t.Fatalf("TestRMSE = %v", res.TestRMSE)
	}
	if len(res.Trace) < 2 {
		t.Fatalf("trace has %d points", len(res.Trace))
	}
	if res.Trace[0].RMSE <= res.TestRMSE {
		t.Fatalf("no improvement: init %.4f final %.4f", res.Trace[0].RMSE, res.TestRMSE)
	}
}

func TestTrainEveryAlgorithm(t *testing.T) {
	d := synthSmall(t)
	for _, name := range Algorithms() {
		cfg := Config{Algorithm: name, Epochs: 3, Seed: 3, Workers: 2}
		res, err := Train(d, cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Updates == 0 {
			t.Errorf("%s: no work performed", name)
		}
	}
}

func TestTrainDistributedNetworkNames(t *testing.T) {
	d := synthSmall(t)
	for _, network := range []string{"instant", "hpc", "commodity"} {
		res, err := Train(d, Config{Machines: 2, Network: network, Epochs: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		if res.MessagesSent == 0 {
			t.Errorf("%s: no messages sent", network)
		}
	}
	if _, err := Train(d, Config{Network: "carrier-pigeon"}); err == nil {
		t.Fatal("bad network name accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d := synthSmall(t)
	if _, err := Train(d, Config{Algorithm: "quantum"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNewDatasetAndPredictRoundTrip(t *testing.T) {
	trainR := []Rating{
		{0, 0, 5}, {0, 1, 3}, {1, 0, 4}, {1, 2, 1}, {2, 1, 2}, {2, 2, 5},
	}
	testR := []Rating{{0, 2, 4}}
	d, err := NewDataset(3, 3, trainR, testR)
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainSize() != 6 || d.TestSize() != 1 {
		t.Fatalf("sizes: %d/%d", d.TrainSize(), d.TestSize())
	}
	if !d.Rated(0, 0) || d.Rated(0, 2) {
		t.Fatal("Rated wrong")
	}
	got := d.UserRatings(0)
	if len(got) != 2 || got[0].Value != 5 {
		t.Fatalf("UserRatings = %+v", got)
	}
}

func TestNewDatasetRejectsBadTest(t *testing.T) {
	if _, err := NewDataset(2, 2, []Rating{{0, 0, 1}}, []Rating{{5, 0, 1}}); err == nil {
		t.Fatal("out-of-range test rating accepted")
	}
}

func TestSplitConserves(t *testing.T) {
	var ratings []Rating
	for u := 0; u < 30; u++ {
		for i := 0; i < 10; i++ {
			if (u+i)%2 == 0 {
				ratings = append(ratings, Rating{u, i, float64(i)})
			}
		}
	}
	d, err := Split(30, 10, ratings, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainSize()+d.TestSize() != len(ratings) {
		t.Fatal("split lost ratings")
	}
	if d.TestSize() == 0 {
		t.Fatal("empty test split")
	}
}

func TestRecommendExcludesRated(t *testing.T) {
	d := synthSmall(t)
	res, err := Train(d, Config{Epochs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	user := 0
	recs := res.Model.Recommend(d, user, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range recs {
		if d.Rated(user, r.Item) {
			t.Errorf("recommended already-rated item %d", r.Item)
		}
	}
	// Scores must be sorted descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("recommendations not sorted")
		}
	}
}

func TestModelSaveLoad(t *testing.T) {
	d := synthSmall(t)
	res, err := Train(d, Config{Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Predict(1, 1) != res.Model.Predict(1, 1) {
		t.Fatal("loaded model predicts differently")
	}
	if got := d.RMSE(loaded); math.Abs(got-res.TestRMSE) > 1e-12 {
		t.Fatalf("loaded RMSE %v != %v", got, res.TestRMSE)
	}
}

func TestDatasetTextRoundTrip(t *testing.T) {
	d := synthSmall(t)
	var buf bytes.Buffer
	if err := d.WriteTrainMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDataset(strings.NewReader(buf.String()), 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d2.TrainSize()+d2.TestSize() != d.TrainSize() {
		t.Fatal("text round trip changed rating count")
	}
}

func TestRankingQuality(t *testing.T) {
	d := synthSmall(t)
	res, err := Train(d, Config{Epochs: 8, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rq := d.Ranking(res.Model, 5, 4.0)
	if rq.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if rq.K != 5 {
		t.Fatalf("K = %d", rq.K)
	}
	for name, v := range map[string]float64{
		"precision": rq.PrecisionK, "recall": rq.RecallK, "ndcg": rq.NDCGK,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("%s@K = %v out of [0,1]", name, v)
		}
	}
	// A trained model must rank far better than random: with 17 items
	// and several relevant per user, random recall@5 ≈ 5/17; demand
	// meaningfully more.
	if rq.RecallK < 0.4 {
		t.Errorf("recall@5 = %.3f, suspiciously low for a trained model", rq.RecallK)
	}
}

func TestLossConfig(t *testing.T) {
	d := synthSmall(t)
	for _, l := range []string{"square", "absolute", "logistic"} {
		if _, err := Train(d, Config{Loss: l, Epochs: 2, Seed: 1}); err != nil {
			t.Errorf("loss %q: %v", l, err)
		}
	}
	if _, err := Train(d, Config{Loss: "hinge"}); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestAlgorithmsListMatchesRegistry(t *testing.T) {
	d := synthSmall(t)
	_ = d
	names := Algorithms()
	if len(names) != 9 {
		t.Fatalf("expected 9 algorithms, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate algorithm %q", n)
		}
		seen[n] = true
	}
}
