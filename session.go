package nomad

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/loss"
	"nomad/internal/metrics"
	"nomad/internal/netsim"
	"nomad/internal/queue"
	"nomad/internal/train"
)

// A Session is a first-class training run: cancellable, observable,
// checkpointable and resumable. Where the legacy Train function blocks
// until done and returns only a post-hoc trace, a Session is built
// once from functional options and then driven:
//
//	s, err := nomad.NewSession(ds,
//		nomad.WithAlgorithm("nomad"),
//		nomad.WithRank(16),
//		nomad.WithLambda(0.05),
//		nomad.WithWorkers(4),
//		nomad.WithStopConditions(nomad.MaxEpochs(20)),
//	)
//	events, cancel := s.Subscribe(64)
//	go func() { for e := range events { ... } }()
//	res, err := s.Run(ctx) // honours ctx cancellation end-to-end
//	defer cancel()
//
// Run may be interrupted by cancelling ctx: every solver stops
// promptly and Run returns the partial result alongside ctx.Err().
// The session then holds the run's full training state — factors,
// step-schedule position, RNG streams, token ownership — which
// Checkpoint serializes and Resume restores, so a killed run restarts
// where it left off (bit-compatibly for deterministic configurations;
// see TestCheckpointResume*). Calling Run again on a stopped session
// likewise continues in-memory from that state until the configured
// stop conditions are met.
//
// A Session is safe for concurrent use, but only one Run may be in
// flight at a time.
type Session struct {
	ds        *Dataset
	algorithm string
	algo      train.Algorithm
	base      train.Config
	elastic   *train.ElasticControl

	mu      sync.Mutex
	running bool
	state   *train.State
	result  *Result
	subs    map[int]chan Event
	nextSub int
}

// ErrRunning is returned when an operation requires a stopped session
// (Checkpoint, Resume, a second Run) while a Run is in flight.
var ErrRunning = errors.New("nomad: session is running")

// ErrNoState is returned by Checkpoint before any Run has produced
// resumable state.
var ErrNoState = errors.New("nomad: session has no training state yet (Run first)")

// settings is the resolved form of the functional options. Pointer
// fields distinguish "never set" from "explicitly zero" — the
// ambiguity that made the flat Config struct rewrite Lambda: 0 into
// 0.05 behind the caller's back.
type settings struct {
	algorithm    string
	rank         *int
	lambda       *float64
	alpha, beta  *float64
	workers      *int
	machines     *int
	network      string
	role         string
	listen, join string
	lockstep     bool
	lossName     string
	precision    *Precision
	pinWorkers   bool
	transport    queue.Kind
	loadBalance  bool
	balanceUsers bool
	batchSize    *int
	straggle     *float64
	seed         *uint64
	evalPoints   *int
	epochs       *int
	maxDuration  *time.Duration
	maxUpdates   *int64
	failover     bool
	elastic      *int
	chaos        string
	hbInterval   *time.Duration
	hbTimeout    *time.Duration
}

// Option configures a Session at construction. Options are applied in
// order; later options override earlier ones.
type Option func(*settings) error

// WithAlgorithm selects the solver by name — one of Algorithms().
// Default "nomad".
func WithAlgorithm(name string) Option {
	return func(st *settings) error {
		if _, ok := registry()[name]; !ok {
			return fmt.Errorf("nomad: unknown algorithm %q (have %v)", name, Algorithms())
		}
		st.algorithm = name
		return nil
	}
}

// WithRank sets the latent dimension k (paper Table 1). Default 16.
func WithRank(k int) Option {
	return func(st *settings) error {
		if k <= 0 {
			return fmt.Errorf("nomad: rank must be positive, got %d", k)
		}
		st.rank = &k
		return nil
	}
}

// WithLambda sets the regularization λ. Unlike the legacy Config,
// WithLambda(0) really means zero regularization. Default 0.05.
func WithLambda(l float64) Option {
	return func(st *settings) error {
		if l < 0 {
			return fmt.Errorf("nomad: lambda must be non-negative, got %v", l)
		}
		st.lambda = &l
		return nil
	}
}

// WithSchedule sets the SGD step-size schedule s_t = α/(1+β·t^1.5) of
// paper eq. (11). Defaults α=0.05, β=0.02 (tuned for the synthetic
// datasets). β=0 — a constant step — is expressible.
func WithSchedule(alpha, beta float64) Option {
	return func(st *settings) error {
		if alpha <= 0 {
			return fmt.Errorf("nomad: schedule alpha must be positive, got %v", alpha)
		}
		if beta < 0 {
			return fmt.Errorf("nomad: schedule beta must be non-negative, got %v", beta)
		}
		st.alpha, st.beta = &alpha, &beta
		return nil
	}
}

// WithWorkers sets the worker threads per machine. Default 1.
func WithWorkers(n int) Option {
	return func(st *settings) error {
		if n <= 0 {
			return fmt.Errorf("nomad: workers must be positive, got %d", n)
		}
		st.workers = &n
		return nil
	}
}

// WithCluster runs on `machines` machines. network selects the
// backend: "instant", "hpc" or "commodity" are profiles of the
// in-process simulated network; "tcp" is the real-socket backend
// (netlink wire protocol, rendezvous, heartbeat failure detection).
// Default is a single machine (no network).
//
// The optional address list places the run in a real multi-process
// cluster (network "tcp" only):
//
//	WithCluster(4, "tcp")                          // loopback mesh inside this process
//	WithCluster(4, "tcp", ":7070")                 // coordinator: listen, wait for 3 workers
//	WithCluster(0, "tcp", ":0", "host0:7070")      // worker: listen addr, coordinator to join
//
// Multi-process runs use the deterministic lockstep rounds (see
// WithLockstep); every process must be invoked with the same dataset,
// seed and hyper-parameters, which the rendezvous verifies with a
// config digest. A worker may pass machines 0 — it learns the cluster
// size from the coordinator's welcome.
func WithCluster(machines int, network string, addrs ...string) Option {
	return func(st *settings) error {
		switch network {
		case "", "instant", "hpc", "commodity":
			if len(addrs) > 0 {
				return fmt.Errorf("nomad: address list needs the \"tcp\" network, got %q", network)
			}
		case "tcp":
		default:
			return fmt.Errorf("nomad: unknown network %q (instant, hpc, commodity, tcp)", network)
		}
		switch len(addrs) {
		case 0:
			if machines <= 0 {
				return fmt.Errorf("nomad: machines must be positive, got %d", machines)
			}
			st.role, st.listen, st.join = "", "", ""
		case 1:
			if machines < 2 {
				return fmt.Errorf("nomad: a coordinator needs at least 2 machines, got %d", machines)
			}
			st.role, st.listen, st.join = "coordinator", addrs[0], ""
		case 2:
			if machines < 0 {
				return fmt.Errorf("nomad: machines must be non-negative, got %d", machines)
			}
			st.role, st.listen, st.join = "worker", addrs[0], addrs[1]
		default:
			return fmt.Errorf("nomad: at most two addresses (listen[, join]), got %d", len(addrs))
		}
		st.machines = &machines
		st.network = network
		return nil
	}
}

// WithLockstep selects the deterministic round-based distributed
// runner: machines exchange tokens at synchronized round boundaries
// and the result is bitwise-identical for a given (dataset, seed,
// machines, workers) whatever the backend or process layout — the
// property the cross-backend CI parity check asserts. Multi-process
// clusters (WithCluster with addresses) always run lockstep. The cost
// is the asynchronous overlap the paper advocates, so this is a
// verification mode, not the fast path.
func WithLockstep() Option {
	return func(st *settings) error { st.lockstep = true; return nil }
}

// Precision selects the element type of the factor model; see
// WithPrecision.
type Precision int

const (
	// Float64 is the default precision, supported by every solver.
	Float64 Precision = iota
	// Float32 stores the factors in single precision: half the model
	// memory and memory bandwidth, at a small accuracy cost (test RMSE
	// typically within ~1e-3 of the float64 run on the paper's
	// synthetic profiles; see DESIGN.md §9 for the exact contract).
	// Supported by "nomad" (shared-memory and asynchronous distributed
	// runs) and "hogwild".
	Float32
)

func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// WithPrecision selects the factor-model element type. Default
// Float64. Float32 is rejected for solvers and modes without a
// single-precision hot path (the bulk-synchronous baselines, lockstep
// and multi-process clusters).
func WithPrecision(p Precision) Option {
	return func(st *settings) error {
		if p != Float64 && p != Float32 {
			return fmt.Errorf("nomad: unknown precision %d", p)
		}
		st.precision = &p
		return nil
	}
}

// WithPinnedWorkers pins each SGD worker goroutine to its own OS
// thread and, on linux, to a distinct CPU core. This is the placement
// the multi-core scaling benchmarks use: it stops the scheduler from
// migrating workers mid-run, which blurs cache residency and adds
// variance. Best-effort on other platforms (thread locking only).
func WithPinnedWorkers() Option {
	return func(st *settings) error { st.pinWorkers = true; return nil }
}

// WithLoss selects the per-rating loss: "square" (default, paper
// eq. 1), "absolute", or "logistic" for ±1 binary matrices (the §6
// generalization). Honoured by "nomad" and "hogwild".
func WithLoss(name string) Option {
	return func(st *settings) error {
		if _, err := loss.ByName(name); err != nil {
			return fmt.Errorf("nomad: %w", err)
		}
		st.lossName = name
		return nil
	}
}

// WithTransport selects NOMAD's token transport by name: "auto" (the
// default — the batched SPSC ring mesh, or the legacy mutex queue when
// NOMAD_REFERENCE_TRANSPORT is set), "spsc", "mutex", "lockfree" or
// "chan". The MPMC kinds exist for the §3.5 ablation; "spsc" is the
// fast path.
func WithTransport(name string) Option {
	return func(st *settings) error {
		k, err := queue.KindByName(name)
		if err != nil {
			return fmt.Errorf("nomad: %w", err)
		}
		st.transport = k
		return nil
	}
}

// WithLoadBalance enables NOMAD's §3.3 dynamic load balancing.
func WithLoadBalance() Option {
	return func(st *settings) error { st.loadBalance = true; return nil }
}

// WithBalancedUsers partitions users by rating volume instead of by
// count (the paper's footnote-1 alternative).
func WithBalancedUsers() Option {
	return func(st *settings) error { st.balanceUsers = true; return nil }
}

// WithBatchSize sets the tokens-per-message accumulation of §3.5.
// Default 100.
func WithBatchSize(n int) Option {
	return func(st *settings) error {
		if n <= 0 {
			return fmt.Errorf("nomad: batch size must be positive, got %d", n)
		}
		st.batchSize = &n
		return nil
	}
}

// WithStraggler slows worker 0 by the given factor (>1) to exercise
// heterogeneous-cluster behaviour (§3.3 ablation).
func WithStraggler(factor float64) Option {
	return func(st *settings) error {
		if factor < 1 {
			return fmt.Errorf("nomad: straggle factor must be ≥ 1, got %v", factor)
		}
		st.straggle = &factor
		return nil
	}
}

// WithElastic provisions spares extra machine slots for mid-run
// scale-out: the cluster's links and partition are built for
// Machines+spares slots, but the spares stay latent — they run their
// communication threads, own no tokens and attract no traffic — until
// a join activates one (Session.Resize().Join, a chaos "join" event,
// or nomad-train's join trigger). Members can also leave gracefully
// mid-run (Resize().Drain), streaming their tokens and state to a ring
// buddy with zero lost updates. Every membership change conserves all
// n item tokens exactly, which the run's teardown asserts. Implies
// WithFailover, with the same constraints: at least 3 machines and the
// asynchronous distributed runners (not lockstep or multi-process
// roles). spares may be 0 for a run that only ever shrinks.
func WithElastic(spares int) Option {
	return func(st *settings) error {
		if spares < 0 {
			return fmt.Errorf("nomad: elastic spares must be non-negative, got %d", spares)
		}
		st.elastic = &spares
		return nil
	}
}

// WithFailover lets a multi-machine asynchronous run survive the death
// of one worker machine: survivors detect the failure, pause token
// circulation, re-assign the dead machine's item tokens and user rows
// to its ring buddy (re-materialized from the buddy's replica of the
// dead machine's state), and resume mid-epoch without restarting. The
// run emits a PeerDownEvent at detection and a PeerRecoveredEvent once
// circulation has resumed. Requires at least 3 machines and the
// asynchronous distributed runners (not lockstep or multi-process
// roles).
func WithFailover() Option {
	return func(st *settings) error { st.failover = true; return nil }
}

// WithHeartbeat tunes the tcp backend's failure detector: interval
// between heartbeat frames and the silent-peer timeout after which a
// peer is declared dead. Zero keeps a parameter's default (1s / 5s).
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(st *settings) error {
		if interval < 0 || timeout < 0 {
			return fmt.Errorf("nomad: heartbeat interval and timeout must be non-negative")
		}
		if interval > 0 && timeout > 0 && timeout <= interval {
			return fmt.Errorf("nomad: heartbeat timeout %v must exceed the interval %v", timeout, interval)
		}
		st.hbInterval, st.hbTimeout = &interval, &timeout
		return nil
	}
}

// WithChaos injects one deterministic, seeded fault into the run for
// resilience testing — the same injection points the failover test
// matrix uses. The spec reads op:rank=N,at=point[,after=N,p=F,
// window=D,seed=N], e.g. "kill:rank=2,at=mid-epoch". Kill and
// partition faults imply WithFailover.
func WithChaos(spec string) Option {
	return func(st *settings) error {
		if _, err := cluster.ParseChaos(spec); err != nil {
			return fmt.Errorf("nomad: %w", err)
		}
		st.chaos = spec
		return nil
	}
}

// WithSeed fixes the run's random seed. Default 1.
func WithSeed(seed uint64) Option {
	return func(st *settings) error { st.seed = &seed; return nil }
}

// WithEvalPoints sets how many RMSE samples the convergence trace
// holds (default 16).
func WithEvalPoints(n int) Option {
	return func(st *settings) error {
		if n <= 0 {
			return fmt.Errorf("nomad: eval points must be positive, got %d", n)
		}
		st.evalPoints = &n
		return nil
	}
}

// StopCondition bounds a run; see WithStopConditions.
type StopCondition func(*settings)

// MaxEpochs stops after about n sweeps over the training ratings.
func MaxEpochs(n int) StopCondition {
	return func(st *settings) { st.epochs = &n }
}

// MaxDuration stops after the given wall-clock budget.
func MaxDuration(d time.Duration) StopCondition {
	return func(st *settings) { st.maxDuration = &d }
}

// MaxUpdates stops after the given number of SGD updates (cumulative
// across resumed segments).
func MaxUpdates(n int64) StopCondition {
	return func(st *settings) { st.maxUpdates = &n }
}

// WithStopConditions bounds the run: it ends when any of the given
// conditions is met. Default: MaxEpochs(10).
func WithStopConditions(conds ...StopCondition) Option {
	return func(st *settings) error {
		if len(conds) == 0 {
			return fmt.Errorf("nomad: WithStopConditions needs at least one condition")
		}
		st.epochs, st.maxDuration, st.maxUpdates = nil, nil, nil
		for _, c := range conds {
			c(st)
		}
		return nil
	}
}

// NewSession validates the dataset and options and returns a Session
// ready to Run. All configuration errors surface here, not mid-run.
func NewSession(ds *Dataset, opts ...Option) (*Session, error) {
	if ds == nil || ds.inner == nil {
		return nil, fmt.Errorf("nomad: nil dataset")
	}
	if ds.inner.Train == nil || ds.inner.Train.NNZ() == 0 {
		return nil, fmt.Errorf("nomad: empty dataset (no training ratings)")
	}
	st := settings{algorithm: "nomad"}
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	if st.algorithm != "nomad" && (st.network == "tcp" || st.role != "" || st.lockstep) {
		// Only the nomad solver implements the real-socket backend and
		// the lockstep/multi-process runners; accepting the options for
		// the baselines would silently train independent local runs.
		return nil, fmt.Errorf("nomad: the tcp backend, cluster roles and lockstep are only implemented by the %q solver (got %q)", "nomad", st.algorithm)
	}
	if st.elastic != nil && (st.algorithm != "nomad" || st.lockstep || st.role != "") {
		return nil, fmt.Errorf("nomad: elastic membership is only implemented by the %q solver's asynchronous runners (not lockstep or multi-process roles)", "nomad")
	}
	if st.precision != nil && *st.precision == Float32 {
		if st.algorithm != "nomad" && st.algorithm != "hogwild" {
			return nil, fmt.Errorf("nomad: float32 precision is only implemented by the SGD solvers %q and %q (got %q)", "nomad", "hogwild", st.algorithm)
		}
		if st.lockstep || st.role != "" {
			return nil, fmt.Errorf("nomad: float32 precision is not supported by the lockstep/multi-process runners")
		}
	}
	cfg, err := st.trainConfig()
	if err != nil {
		return nil, err
	}
	// Every session owns a membership-control endpoint; the asynchronous
	// runners bind its handlers while an elastic run is live, so Resize
	// triggers fail with a typed error outside one instead of blocking.
	ec := &train.ElasticControl{}
	cfg.Elastic = ec
	return &Session{
		ds:        ds,
		algorithm: st.algorithm,
		algo:      registry()[st.algorithm],
		base:      cfg,
		elastic:   ec,
		subs:      make(map[int]chan Event),
	}, nil
}

// trainConfig resolves the settings into the internal configuration,
// applying facade-level defaults for anything unset.
func (st *settings) trainConfig() (train.Config, error) {
	cfg := train.Config{
		K:      16,
		Lambda: 0.05,
		Alpha:  0.05,
		Beta:   0.02,
	}
	if st.rank != nil {
		cfg.K = *st.rank
	}
	if st.lambda != nil {
		cfg.Lambda = *st.lambda
	}
	if st.alpha != nil {
		cfg.Alpha, cfg.Beta = *st.alpha, *st.beta
	}
	if st.workers != nil {
		cfg.Workers = *st.workers
	}
	if st.machines != nil {
		cfg.Machines = *st.machines
	}
	switch st.network {
	case "", "instant":
		cfg.Profile = netsim.Instant()
	case "hpc":
		cfg.Profile = netsim.HPC()
	case "commodity":
		cfg.Profile = netsim.Commodity()
	case "tcp":
		cfg.Profile = netsim.Instant() // unused: real sockets carry the traffic
		cfg.Backend = "tcp"
	}
	cfg.Role = st.role
	cfg.Listen = st.listen
	cfg.Join = st.join
	cfg.Lockstep = st.lockstep || st.role != ""
	lossFn, err := loss.ByName(st.lossName)
	if err != nil {
		return cfg, fmt.Errorf("nomad: %w", err)
	}
	cfg.Loss = lossFn
	if st.precision != nil && *st.precision == Float32 {
		cfg.Precision = factor.Float32
	}
	cfg.PinWorkers = st.pinWorkers
	cfg.QueueKind = st.transport
	cfg.LoadBalance = st.loadBalance
	cfg.BalanceUsers = st.balanceUsers
	if st.batchSize != nil {
		cfg.BatchSize = *st.batchSize
	}
	if st.straggle != nil {
		cfg.Straggle = *st.straggle
	}
	if st.seed != nil {
		cfg.Seed = *st.seed
	}
	if st.evalPoints != nil {
		cfg.EvalPoints = *st.evalPoints
	}
	if st.epochs != nil {
		cfg.Epochs = *st.epochs
	}
	if st.maxDuration != nil {
		cfg.Deadline = *st.maxDuration
	}
	if st.maxUpdates != nil {
		cfg.MaxUpdates = *st.maxUpdates
	}
	cfg.Failover = st.failover
	if st.elastic != nil {
		cfg.ElasticSpares = *st.elastic
		cfg.Failover = true
	}
	if st.chaos != "" {
		spec, err := cluster.ParseChaos(st.chaos)
		if err != nil {
			return cfg, fmt.Errorf("nomad: %w", err)
		}
		cfg.Chaos = spec
	}
	if st.hbInterval != nil {
		cfg.HeartbeatInterval = *st.hbInterval
	}
	if st.hbTimeout != nil {
		cfg.HeartbeatTimeout = *st.hbTimeout
	}
	return cfg, nil
}

// Run trains until a stop condition is met or ctx ends the run. It
// returns the (possibly partial) result; when ctx was cancelled or
// expired, the error is ctx.Err() and the session retains the partial
// state, so a later Run, or Checkpoint + Resume in a new process,
// continues the run. Only one Run may be in flight per session.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil, ErrRunning
	}
	s.running = true
	cfg := s.base
	cfg.Resume = s.state
	s.mu.Unlock()

	res, err := s.algo.Train(ctx, s.ds.inner, cfg, s.hooks())
	err = publicError(err)

	s.mu.Lock()
	s.running = false
	if res != nil {
		s.state = res.Final
		s.result = newResult(res, s.ds)
	}
	out := s.result
	s.mu.Unlock()

	if err != nil {
		if res == nil {
			return nil, err
		}
		return out, err
	}
	return out, nil
}

// Result returns the most recent Run's result, or nil before any run.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// Resize is the live membership-control handle of an elastic session
// (WithElastic): it asks the in-flight Run to grow or shrink the
// cluster. Obtained from Session.Resize; safe for concurrent use.
type Resize struct{ ec *train.ElasticControl }

// Join activates a provisioned spare machine mid-run (rank -1 picks
// the lowest idle spare). The call returns once the join round is
// enqueued; a ResizeEvent reports the committed change. It fails with
// a typed error when no elastic run is in flight, the rank is not an
// idle spare, or no spare remains.
func (r *Resize) Join(rank int) error { return r.ec.Join(rank) }

// Drain removes a machine gracefully mid-run: the leaver fences,
// streams its item tokens, user responsibilities and replicas to its
// ring buddy with zero lost updates, and leaves the working set (rank
// -1 picks the leaver deterministically). Fails with a typed error
// when no elastic run is in flight or the cluster would shrink below
// the 2-machine floor.
func (r *Resize) Drain(rank int) error { return r.ec.Drain(rank) }

// Resize returns the session's membership controls. The handle is
// always valid; its Join and Drain only succeed while an elastic Run
// (WithElastic, or a chaos schedule with join/drain events) is in
// flight.
func (s *Session) Resize() *Resize { return &Resize{ec: s.elastic} }

// Subscribe registers an event channel with the given buffer (minimum
// 16). Events stream while Run is in flight; a slow subscriber loses
// old events instead of stalling training. The returned cancel
// function closes the channel and releases the subscription — call it
// when done, and drain the channel until closed.
func (s *Session) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 16 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// publish fans an event out to all subscribers. Sends never block: a
// full buffer drops its oldest pending event to make room.
func (s *Session) publish(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- e:
		default:
			select { // drop the oldest, then retry once
			case <-ch:
			default:
			}
			select {
			case ch <- e:
			default:
			}
		}
	}
}

// hooks bridges the internal training events to the public ones.
func (s *Session) hooks() *train.Hooks {
	return &train.Hooks{
		Trace: func(e train.TraceEvent) {
			s.publish(TraceEvent{Seconds: e.Seconds, Updates: e.Updates, RMSE: e.RMSE})
		},
		Epoch: func(e train.EpochEvent) {
			s.publish(EpochEvent{Epoch: e.Epoch, Updates: e.Updates})
		},
		Balance: func(e train.BalanceEvent) {
			s.publish(BalanceEvent{From: e.From, To: e.To, QueueLen: e.QueueLen})
		},
		Network: func(e train.NetworkEvent) {
			s.publish(NetworkEvent{BytesSent: e.BytesSent, MessagesSent: e.MessagesSent})
		},
		Peer: func(e train.PeerEvent) {
			s.publish(PeerDownEvent{Rank: e.Rank, Reason: e.Reason})
		},
		PeerRecovered: func(e train.PeerRecoveredEvent) {
			s.publish(PeerRecoveredEvent{Rank: e.Rank, RecoverySeconds: e.Recovery})
		},
		Resize: func(e train.ResizeEvent) {
			s.publish(ResizeEvent{Kind: e.Kind, Rank: e.Rank, Machines: e.Machines, Seconds: e.Seconds})
		},
	}
}

// PeerError is the typed error Run returns when a machine of a real
// multi-process cluster stops responding mid-run (its connection broke
// without an orderly end-of-stream, or its heartbeats timed out).
type PeerError struct {
	// Rank is the machine that went down.
	Rank int
	// Err is the transport-level cause.
	Err error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("nomad: cluster machine %d went down: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *PeerError) Unwrap() error { return e.Err }

// publicError rewraps internal transport failures into the public
// typed error, leaving everything else untouched.
func publicError(err error) error {
	if err == nil {
		return nil
	}
	var pd *cluster.PeerDownError
	if errors.As(err, &pd) {
		return &PeerError{Rank: pd.Rank, Err: pd.Cause}
	}
	return err
}

// Checkpoint serializes the session's full training state — factors,
// step-schedule position, RNG streams, token ownership and update
// total — so a later session can Resume it. The session must be
// stopped (between or after runs) and must have run at least once.
func (s *Session) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return ErrRunning
	}
	if s.state == nil {
		return ErrNoState
	}
	return s.state.WriteBinary(w)
}

// Resume loads a checkpoint written by Checkpoint into this session:
// the next Run continues from the restored state until the session's
// stop conditions (which count cumulatively — e.g. MaxEpochs(10) means
// ten epochs total across all segments) are met. The checkpoint must
// come from the same algorithm and a dataset of the same shape; it
// replaces any state from previous runs of this session.
func (s *Session) Resume(r io.Reader) error {
	st, err := train.ReadState(r)
	if err != nil {
		return err
	}
	k := s.base.K
	if k <= 0 {
		k = 16
	}
	// Solvers with augmented storage (biassgd's bias dims) report their
	// physical rank through train.StorageRanker.
	k = train.StorageRankOf(s.algo, k)
	if err := st.Validate(s.algorithm, s.ds.Users(), s.ds.Items(), k); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return ErrRunning
	}
	s.state = st
	return nil
}

// secondsToDuration converts a float seconds budget to a Duration.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// newResult converts an internal training result to the public shape,
// evaluating the final model on the dataset's test split. The model
// is snapshotted: the session's live training state (which a later
// Run continues to mutate) and the returned Result.Model are
// independent, so a caller can keep serving Predict/Recommend from
// one result while the session trains on.
func newResult(res *train.Result, d *Dataset) *Result {
	out := &Result{
		Algorithm:    res.Algorithm,
		Model:        &Model{inner: res.Model.Clone()},
		TestRMSE:     metrics.RMSE(res.Model, d.inner.Test),
		Updates:      res.Updates,
		Seconds:      res.Elapsed.Seconds(),
		BytesSent:    res.BytesSent,
		MessagesSent: res.MessagesSent,
	}
	for _, p := range res.Trace.Points {
		out.Trace = append(out.Trace, TracePoint{Seconds: p.Seconds, Updates: p.Updates, RMSE: p.RMSE})
	}
	return out
}
