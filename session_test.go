package nomad

// Tests for the Session API: construction-time error paths, context
// cancellation mid-run on a synchronous and an asynchronous solver,
// the event stream, and checkpoint→resume bit-compatibility at fixed
// seed for deterministic (single-worker) configurations.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestNewSessionErrors(t *testing.T) {
	d := synthSmall(t)
	if _, err := NewSession(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	empty, err := NewDataset(3, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(empty); err == nil {
		t.Error("empty dataset accepted")
	}
	cases := map[string]Option{
		"unknown algorithm": WithAlgorithm("quantum"),
		"unknown network":   WithCluster(2, "carrier-pigeon"),
		"unknown loss":      WithLoss("hinge"),
		"bad rank":          WithRank(0),
		"negative lambda":   WithLambda(-0.1),
		"bad alpha":         WithSchedule(0, 0.1),
		"bad workers":       WithWorkers(-1),
		"bad machines":      WithCluster(0, "hpc"),
		"bad batch":         WithBatchSize(0),
		"bad straggle":      WithStraggler(0.5),
		"empty stops":       WithStopConditions(),
	}
	for name, opt := range cases {
		if _, err := NewSession(d, opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLambdaZeroExpressible(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d, WithLambda(0), WithSeed(3), WithStopConditions(MaxEpochs(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.base.Lambda; got != 0 {
		t.Fatalf("WithLambda(0) resolved to λ=%v", got)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyShimDefaults pins the legacy Config translation: Lambda: 0
// still means the historical default 0.05, but a user-set Beta is no
// longer clobbered when Alpha is unset (the old toTrainConfig bug).
func TestLegacyShimDefaults(t *testing.T) {
	resolve := func(cfg Config) settings {
		t.Helper()
		st := settings{algorithm: "nomad"}
		for _, o := range legacyOptions(cfg) {
			if err := o(&st); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	st := resolve(Config{})
	tc, err := st.trainConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Lambda != 0.05 || tc.Alpha != 0.05 || tc.Beta != 0.02 {
		t.Fatalf("zero Config resolved to λ=%v α=%v β=%v, want legacy defaults", tc.Lambda, tc.Alpha, tc.Beta)
	}

	st = resolve(Config{Beta: 0.5})
	tc, err = st.trainConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Alpha != 0.05 || tc.Beta != 0.5 {
		t.Fatalf("Config{Beta: 0.5} resolved to α=%v β=%v; Beta must survive an unset Alpha", tc.Alpha, tc.Beta)
	}

	st = resolve(Config{Lambda: 0.3, Alpha: 0.01, Beta: 0})
	tc, err = st.trainConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Lambda != 0.3 || tc.Alpha != 0.01 || tc.Beta != 0 {
		t.Fatalf("explicit values resolved to λ=%v α=%v β=%v", tc.Lambda, tc.Alpha, tc.Beta)
	}
}

// runCancelled starts a run with an effectively unbounded budget,
// cancels it shortly after, and asserts the solver stopped promptly
// with ctx.Err() and partial progress.
func runCancelled(t *testing.T, algo string) {
	t.Helper()
	d := synthSmall(t)
	s, err := NewSession(d,
		WithAlgorithm(algo),
		WithWorkers(2),
		WithSeed(5),
		WithStopConditions(MaxUpdates(1<<60)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: Run returned %v, want context.Canceled", algo, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("%s: cancellation took %v, not prompt", algo, elapsed)
	}
	if res == nil {
		t.Fatalf("%s: no partial result after cancellation", algo)
	}
	if res.Updates == 0 {
		t.Errorf("%s: no work performed before cancellation", algo)
	}
}

func TestRunCancelAsynchronousNomad(t *testing.T) { runCancelled(t, "nomad") }
func TestRunCancelSynchronousDSGD(t *testing.T)   { runCancelled(t, "dsgd") }

func TestRunContextDeadline(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d, WithSeed(5), WithStopConditions(MaxUpdates(1<<60)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
}

// checkpointResume trains the same configuration two ways — straight
// through 6 epochs, versus 3 epochs, serialized checkpoint, restored
// session, 6-epoch total budget — and demands identical final models.
// Single-worker runs stop at deterministic update-count boundaries, so
// the resumed segment replays exactly the token/stratum sequence the
// uninterrupted run executed.
func checkpointResume(t *testing.T, algo string, extra ...Option) {
	t.Helper()
	d := synthSmall(t)
	opts := func(epochs int) []Option {
		return append([]Option{
			WithAlgorithm(algo),
			WithWorkers(1),
			WithSeed(11),
			WithEvalPoints(4),
			WithStopConditions(MaxEpochs(epochs)),
		}, extra...)
	}

	full, err := NewSession(d, opts(6)...)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	half, err := NewSession(d, opts(3)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Checkpoint(new(bytes.Buffer)); !errors.Is(err, ErrNoState) {
		t.Fatalf("Checkpoint before Run = %v, want ErrNoState", err)
	}
	if _, err := half.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := half.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewSession(d, opts(6)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Resume(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	gotRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if gotRes.Updates != wantRes.Updates {
		t.Errorf("%s: resumed run did %d updates, uninterrupted did %d", algo, gotRes.Updates, wantRes.Updates)
	}
	if math.Abs(gotRes.TestRMSE-wantRes.TestRMSE) > 1e-12 {
		t.Errorf("%s: resumed final RMSE %.15f != uninterrupted %.15f", algo, gotRes.TestRMSE, wantRes.TestRMSE)
	}
	// The whole model must match, not just its aggregate score.
	for _, user := range []int{0, 1, 7} {
		for item := 0; item < gotRes.Model.Items(); item++ {
			g, w := gotRes.Model.Predict(user, item), wantRes.Model.Predict(user, item)
			if g != w {
				t.Fatalf("%s: prediction (%d,%d) diverged: %v vs %v", algo, user, item, g, w)
			}
		}
	}
}

func TestCheckpointResumeBitCompatibleNomad(t *testing.T) { checkpointResume(t, "nomad") }
func TestCheckpointResumeBitCompatibleDSGD(t *testing.T)  { checkpointResume(t, "dsgd") }

// The resume guarantee must hold on both sides of the transport A/B:
// the batched SPSC mesh reconstructs its logical token queue from the
// drained ownership map (front residual ∥ ring ∥ out-buffers), and the
// legacy mutex queue stays bit-compatible as before.
func TestCheckpointResumeBitCompatibleNomadSPSC(t *testing.T) {
	checkpointResume(t, "nomad", WithTransport("spsc"))
}
func TestCheckpointResumeBitCompatibleNomadMutex(t *testing.T) {
	checkpointResume(t, "nomad", WithTransport("mutex"))
}

func TestWithTransportRejectsUnknown(t *testing.T) {
	d := synthSmall(t)
	if _, err := NewSession(d, WithTransport("bogus")); err == nil {
		t.Fatal("unknown transport accepted")
	}
	for _, name := range []string{"auto", "spsc", "mutex", "lockfree", "chan"} {
		if _, err := NewSession(d, WithTransport(name)); err != nil {
			t.Fatalf("transport %q rejected: %v", name, err)
		}
	}
}

func TestCheckpointRoundTripsEverySolver(t *testing.T) {
	if testing.Short() {
		t.Skip("all-solver checkpoint round trip")
	}
	d := synthSmall(t)
	for _, algo := range Algorithms() {
		s, err := NewSession(d, WithAlgorithm(algo), WithWorkers(2), WithSeed(3),
			WithStopConditions(MaxEpochs(2)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatalf("%s: checkpoint: %v", algo, err)
		}
		s2, err := NewSession(d, WithAlgorithm(algo), WithWorkers(2), WithSeed(3),
			WithStopConditions(MaxEpochs(4)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Resume(&buf); err != nil {
			t.Fatalf("%s: resume: %v", algo, err)
		}
		res, err := s2.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: resumed run: %v", algo, err)
		}
		if res.Updates <= 2*int64(d.TrainSize())-512 {
			t.Errorf("%s: resumed run total %d updates, want past the restored 2-epoch mark", algo, res.Updates)
		}
	}
}

// TestTinyUpdateBudgetWithEpochs pins a former divide-by-zero: an
// explicit MaxUpdates smaller than the epoch count leaves no whole
// updates per epoch, which the epoch-numbering path must tolerate.
func TestTinyUpdateBudgetWithEpochs(t *testing.T) {
	d := synthSmall(t)
	for _, algo := range []string{"dsgd", "dsgdpp", "nomad"} {
		s, err := NewSession(d, WithAlgorithm(algo), WithSeed(3),
			WithStopConditions(MaxEpochs(100), MaxUpdates(50)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

// TestResultModelIndependentOfLaterRuns: a Result handed out by Run
// must keep its scores while the session trains on — the serving path
// reads it concurrently with the next segment.
func TestResultModelIndependentOfLaterRuns(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d, WithSeed(3), WithStopConditions(MaxEpochs(2)))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := res1.Model.Predict(0, 0)
	// Continue the same session well past the first budget (raising it
	// in place: same-package shortcut for "reconfigured continuation").
	s.base.MaxUpdates = 0
	s.base.Epochs = 20
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := res1.Model.Predict(0, 0); got != before {
		t.Fatalf("first result's model mutated by a later Run: %v -> %v", before, got)
	}
}

func TestResumeRejectsWrongAlgorithm(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d, WithAlgorithm("als"), WithSeed(3), WithStopConditions(MaxEpochs(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := NewSession(d, WithAlgorithm("ccd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Resume(&buf); err == nil {
		t.Fatal("ccd session accepted an als checkpoint")
	}
}

func TestResumeRejectsGarbage(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestSubscribeStreamsEvents(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d, WithWorkers(2), WithSeed(4), WithStopConditions(MaxEpochs(6)))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := s.Subscribe(256)
	defer cancel()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancel()
	var traces, epochs int
	for e := range events {
		switch e.(type) {
		case TraceEvent:
			traces++
		case EpochEvent:
			epochs++
		}
	}
	if traces == 0 {
		t.Error("no TraceEvents streamed")
	}
	if epochs == 0 {
		t.Error("no EpochEvents streamed")
	}
	// The legacy post-hoc trace and the stream must tell one story.
	if res := s.Result(); len(res.Trace) == 0 {
		t.Error("post-hoc trace empty")
	}
}

// TestRaceSessionEventFanout is the CI -race target: a synchronous
// solver (race-free by construction — sampling happens between epoch
// barriers) driven with concurrent subscribers, an unsubscribe while
// events flow, and a mid-run cancellation. The asynchronous solvers
// are excluded from -race on purpose: their monitor samples the model
// unlocked while workers write (documented in train.Recorder), and
// Hogwild races by definition.
func TestRaceSessionEventFanout(t *testing.T) {
	d := synthSmall(t)
	s, err := NewSession(d,
		WithAlgorithm("dsgd"),
		WithWorkers(2),
		WithSeed(9),
		WithStopConditions(MaxEpochs(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 2)
	for i := 0; i < 2; i++ {
		events, cancel := s.Subscribe(4) // tiny buffer: exercise drops
		go func(i int) {
			n := 0
			for range events {
				n++
				if i == 1 && n == 2 {
					cancel() // unsubscribe mid-stream, while emitting
				}
			}
			got <- n
		}(i)
		if i == 0 {
			defer cancel()
		}
	}
	ctx, cancelRun := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancelRun()
	}()
	res, err := s.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	// Continue the cancelled run in-memory to completion.
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = map[int]chan Event{}
	s.mu.Unlock()
	<-got
	<-got
}
