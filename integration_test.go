package nomad

// Cross-algorithm integration tests: every solver in the repository
// optimizes objective (1) on the same data, so given enough budget all
// of them must land in the same quality neighbourhood. This is the
// repository-level consistency check behind every comparison figure —
// if one solver's implementation drifted (wrong gradient, wrong
// regularizer, broken partition), it would fail here long before a
// benchmark looked "slow".

import (
	"math"
	"testing"
)

// qualityDataset is large enough that converged quality is stable but
// small enough that every solver converges within the test budget.
func qualityDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := Synthesize("yahoo", 0.0002, 17)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllSolversReachComparableQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solver convergence test")
	}
	d := qualityDataset(t)
	finals := map[string]float64{}
	// biassgd optimizes a different model (bias terms) and is compared
	// in its own Appendix F figure; hogwild and glals are included.
	solvers := []string{"nomad", "dsgd", "dsgdpp", "fpsgd", "ccd", "als", "glals", "hogwild"}
	for _, name := range solvers {
		// Equal wall-clock budgets: update budgets would be unfair to
		// CCD++/ALS, whose work units differ (a CCD++ outer iteration
		// touches each rating 2k times).
		res, err := Train(d, Config{
			Algorithm:  name,
			Workers:    2,
			MaxSeconds: 1.5,
			Lambda:     0.05,
			Seed:       4,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		finals[name] = res.TestRMSE
	}
	// All solvers must improve decisively on the untrained baseline
	// (≈1.0 for unit-variance ratings)...
	for name, rmse := range finals {
		if math.IsNaN(rmse) || rmse > 0.8 {
			t.Errorf("%s: final RMSE %.4f did not converge", name, rmse)
		}
	}
	// ...and the spread between the best and worst converged solver
	// must be modest: they optimize the same objective.
	best, worst := math.Inf(1), math.Inf(-1)
	for _, rmse := range finals {
		best = math.Min(best, rmse)
		worst = math.Max(worst, rmse)
	}
	if worst > best*1.6 {
		t.Errorf("solver quality spread too wide: best %.4f worst %.4f (%+v)", best, worst, finals)
	}
}

func TestNomadDistributedMatchesSharedQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed convergence test")
	}
	d := qualityDataset(t)
	run := func(machines int) float64 {
		res, err := Train(d, Config{
			Machines: machines, Workers: 2, Network: "hpc",
			Epochs: 30, Seed: 6, Lambda: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TestRMSE
	}
	shared := run(1)
	distributed := run(4)
	// Distribution must not change what NOMAD converges to.
	if distributed > shared*1.25 && distributed-shared > 0.05 {
		t.Errorf("distributed RMSE %.4f far from shared %.4f", distributed, shared)
	}
}

func TestLoadBalanceNeverLosesTokens(t *testing.T) {
	// Stress the routing paths: straggler + load balancing + tiny
	// batches + commodity latency, all at once. The run's internal
	// token-conservation check fails the Train call if any token is
	// lost or duplicated.
	d := qualityDataset(t)
	_, err := Train(d, Config{
		Machines: 3, Workers: 2, Network: "commodity",
		LoadBalance: true, Straggle: 3, BatchSize: 1,
		MaxSeconds: 1, Epochs: 1000000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
}
