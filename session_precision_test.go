package nomad

// Float32 precision at the public API: every runner with a
// single-precision hot path trains and converges, the float32 model
// checkpoints and resumes bit-compatibly, the float32-vs-float64 RMSE
// gap stays within the documented tolerance on the netflix profile,
// and the unsupported solver/mode combinations are rejected at
// construction.

import (
	"bytes"
	"context"
	"math"
	"testing"
)

// float32RMSETolerance is the documented accuracy contract of
// WithPrecision(Float32) (DESIGN.md §9): on the synthetic netflix
// profile, the final test RMSE of a float32 run stays within this
// absolute distance of the float64 run with identical configuration.
// The bound is deliberately loose — float32 SGD takes a genuinely
// different trajectory after the first rounding — but a regression
// that breaks the float32 arithmetic (wrong kernel, truncated factor,
// misconverted step) blows past it immediately.
const float32RMSETolerance = 5e-3

func runPrecision(t *testing.T, prec Precision, extra ...Option) *Result {
	t.Helper()
	d := synthSmall(t)
	opts := append([]Option{
		WithPrecision(prec),
		WithSeed(17),
		WithStopConditions(MaxEpochs(4)),
	}, extra...)
	s, err := NewSession(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Precision() != prec {
		t.Fatalf("trained model precision %v, want %v", res.Model.Precision(), prec)
	}
	if math.IsNaN(res.TestRMSE) || res.TestRMSE > 2 {
		t.Fatalf("run did not converge: RMSE %v", res.TestRMSE)
	}
	return res
}

func TestFloat32NomadMutexQueue(t *testing.T) {
	runPrecision(t, Float32, WithWorkers(2), WithTransport("mutex"))
}

func TestFloat32NomadSPSCMesh(t *testing.T) {
	runPrecision(t, Float32, WithWorkers(2), WithTransport("spsc"))
}

func TestFloat32NomadDistributedAsync(t *testing.T) {
	runPrecision(t, Float32, WithCluster(2, "hpc"), WithWorkers(2))
}

func TestFloat32Hogwild(t *testing.T) {
	runPrecision(t, Float32, WithAlgorithm("hogwild"), WithWorkers(2))
}

func TestPinnedWorkersRun(t *testing.T) {
	runPrecision(t, Float64, WithWorkers(2), WithPinnedWorkers())
}

// TestFloat32VsFloat64RMSE is the accuracy contract: identical
// configuration at both precisions, final RMSE within
// float32RMSETolerance on the netflix profile. The float32 run must
// also genuinely train: on this dataset one epoch leaves RMSE ≈ 1.39
// and convergence is ≈ 1.09, so landing under 1.15 means the float32
// trajectory followed the float64 one to the optimum, not just away
// from the random init.
func TestFloat32VsFloat64RMSE(t *testing.T) {
	r64 := runPrecision(t, Float64, WithWorkers(1), WithStopConditions(MaxEpochs(16)))
	r32 := runPrecision(t, Float32, WithWorkers(1), WithStopConditions(MaxEpochs(16)))
	gap := math.Abs(r64.TestRMSE - r32.TestRMSE)
	t.Logf("RMSE float64 %.6f float32 %.6f gap %.2e", r64.TestRMSE, r32.TestRMSE, gap)
	if gap > float32RMSETolerance {
		t.Fatalf("float32 RMSE %v vs float64 %v: gap %v beyond tolerance %v",
			r32.TestRMSE, r64.TestRMSE, gap, float32RMSETolerance)
	}
	if r32.TestRMSE > 1.15 {
		t.Fatalf("float32 run barely trained: RMSE %v", r32.TestRMSE)
	}
}

// The checkpoint→resume bit-compatibility guarantee holds at float32
// too: the state codec round-trips the float32 payload exactly and the
// single-worker continuation replays the identical trajectory.
func TestCheckpointResumeBitCompatibleFloat32(t *testing.T) {
	checkpointResume(t, "nomad", WithPrecision(Float32))
}

func TestCheckpointResumeBitCompatibleFloat32Hogwild(t *testing.T) {
	checkpointResume(t, "hogwild", WithPrecision(Float32))
}

// TestFloat32ModelSaveLoad: the public model codec preserves precision
// and predictions exactly.
func TestFloat32ModelSaveLoad(t *testing.T) {
	res := runPrecision(t, Float32, WithWorkers(1))
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision() != Float32 {
		t.Fatalf("loaded model precision %v", got.Precision())
	}
	for _, user := range []int{0, 3} {
		for item := 0; item < got.Items(); item += 7 {
			if g, w := got.Predict(user, item), res.Model.Predict(user, item); g != w {
				t.Fatalf("prediction (%d,%d) changed across save/load: %v vs %v", user, item, g, w)
			}
		}
	}
}

func TestFloat32Rejections(t *testing.T) {
	d := synthSmall(t)
	cases := map[string][]Option{
		"batch solver als":   {WithPrecision(Float32), WithAlgorithm("als")},
		"batch solver dsgd":  {WithPrecision(Float32), WithAlgorithm("dsgd")},
		"batch solver fpsgd": {WithPrecision(Float32), WithAlgorithm("fpsgd")},
		"lockstep":           {WithPrecision(Float32), WithCluster(2, "hpc"), WithLockstep()},
		"multi-process role": {WithPrecision(Float32), WithCluster(2, "tcp", ":0")},
		"unknown precision":  {WithPrecision(Precision(9))},
	}
	for name, opts := range cases {
		if _, err := NewSession(d, opts...); err == nil {
			t.Errorf("%s: float32 accepted", name)
		}
	}
	// The internal guard catches configs assembled without the facade.
	if _, err := Train(d, Config{Algorithm: "als"}); err != nil {
		t.Fatalf("sanity: plain als config rejected: %v", err)
	}
}

// A float64 checkpoint must not resume into a float32-configured run,
// and vice versa: precision is part of the training state.
func TestResumePrecisionMismatchRejected(t *testing.T) {
	d := synthSmall(t)
	s64, err := NewSession(d, WithSeed(5), WithStopConditions(MaxEpochs(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s64.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := s64.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	s32, err := NewSession(d, WithPrecision(Float32), WithSeed(5), WithStopConditions(MaxEpochs(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s32.Resume(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err) // shape/algorithm validate fine; precision surfaces at Run
	}
	if _, err := s32.Run(context.Background()); err == nil {
		t.Fatal("float64 checkpoint resumed into a float32 run")
	}
}
