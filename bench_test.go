package nomad

// This file maps every table and figure of the paper's evaluation to a
// testing.B benchmark, as indexed in DESIGN.md §3. Each benchmark runs
// the corresponding experiment at a reduced scale and reports the final
// RMSE of its first series (when the experiment produces series) so
// regressions in convergence quality show up next to regressions in
// speed. Run the full set with:
//
//	go test -bench=. -benchmem
//
// For larger-scale regeneration with readable output use
// cmd/nomad-bench (e.g. `go run ./cmd/nomad-bench -exp fig5 -scale 0.01`).

import (
	"testing"

	"nomad/internal/experiments"
)

// benchOpts keeps each experiment benchmark in the seconds range.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:    0.0005,
		Epochs:   3,
		Seconds:  0.25,
		K:        8,
		Workers:  2,
		Machines: 2,
		Seed:     7,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) > 0 {
			b.ReportMetric(res.Series[0].Final(), "final-rmse")
		}
	}
}

// --- Tables ---------------------------------------------------------

func BenchmarkTable1Defaults(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2DatasetGen(b *testing.B) { benchExperiment(b, "table2") }

// --- Method figures -------------------------------------------------

func BenchmarkFig1AccessPattern(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig4Partitioning(b *testing.B)  { benchExperiment(b, "fig4") }

// --- §5.2 shared memory ----------------------------------------------

func BenchmarkFig5SharedMemory(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6UpdatesVsCores(b *testing.B)     { benchExperiment(b, "fig6L") }
func BenchmarkFig6Throughput(b *testing.B)         { benchExperiment(b, "fig6R") }
func BenchmarkFig7CPUTimeScaling(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig18UpdatesVsCoresAll(b *testing.B) { benchExperiment(b, "fig18") }

// --- §5.3 HPC cluster -------------------------------------------------

func BenchmarkFig8DistributedHPC(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9MachineScaling(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10UpdatesVsMachines(b *testing.B)    { benchExperiment(b, "fig10L") }
func BenchmarkFig10Throughput(b *testing.B)           { benchExperiment(b, "fig10R") }
func BenchmarkFig19UpdatesVsMachinesAll(b *testing.B) { benchExperiment(b, "fig19") }

// --- §5.4 commodity cluster -------------------------------------------

func BenchmarkFig11Commodity(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig15CommodityUpdates(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16CommodityThroughput(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17CommodityCPUTime(b *testing.B)    { benchExperiment(b, "fig17") }

// --- §5.5 weak scaling -------------------------------------------------

func BenchmarkFig12WeakScaling(b *testing.B) { benchExperiment(b, "fig12") }

// --- Appendices A, B, E ------------------------------------------------

func BenchmarkFig13LambdaSweep(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14RankSweep(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig20LambdaGrid(b *testing.B)  { benchExperiment(b, "fig20") }

// --- Appendix F (GraphLab comparators) ----------------------------------

func BenchmarkFig21GraphLabShared(b *testing.B)    { benchExperiment(b, "fig21") }
func BenchmarkFig22GraphLabHPC(b *testing.B)       { benchExperiment(b, "fig22") }
func BenchmarkFig23GraphLabCommodity(b *testing.B) { benchExperiment(b, "fig23") }

// --- Ablations (design choices called out in DESIGN.md) ------------------

func BenchmarkAblationQueues(b *testing.B)          { benchExperiment(b, "abl-queue") }
func BenchmarkAblationLoadBalance(b *testing.B)     { benchExperiment(b, "abl-lb") }
func BenchmarkAblationPartition(b *testing.B)       { benchExperiment(b, "abl-part") }
func BenchmarkAblationBatchSize(b *testing.B)       { benchExperiment(b, "abl-batch") }
func BenchmarkAblationSerializability(b *testing.B) { benchExperiment(b, "abl-serial") }
func BenchmarkAblationCirculation(b *testing.B)     { benchExperiment(b, "abl-circ") }

// --- Micro: the core SGD path -------------------------------------------

// BenchmarkTrainNomadEpoch measures one full NOMAD epoch on the
// benchmark dataset through the public API.
func BenchmarkTrainNomadEpoch(b *testing.B) {
	ds, err := Synthesize("netflix", 0.0005, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Train(ds, Config{Epochs: 1, Workers: 2, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Updates), "updates")
	}
}
