package nomad_test

// End-to-end equality gate for the serving layer: a nomad-serve HTTP
// response must match Model.Recommend exactly — same items, same
// scores, same order — including training-set exclusion. This is the
// in-repo version of the CI serve-smoke job's -verify-model check,
// living in package nomad_test so it can see both the public API and
// the serving internals.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"nomad"
	"nomad/internal/factor"
	"nomad/internal/serve"
)

func TestServeMatchesRecommend(t *testing.T) {
	ds, err := nomad.Synthesize("netflix", 0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []factor.Precision{factor.Float64, factor.Float32} {
		md := factor.NewInitP(ds.Users(), ds.Items(), 8, 17, prec)

		// The public-API oracle sees the same bytes a served model file
		// would hold.
		var buf bytes.Buffer
		if err := md.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		oracle, err := nomad.LoadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}

		store := serve.NewStore()
		store.Promote(&serve.Epoch{Seq: 1, Model: md, Index: serve.BuildIndex(md, nil)})
		srv := serve.NewServer(serve.Config{
			Store: store,
			Rated: func(user int32) []int32 { return ds.RatedItems(int(user)) },
		})
		ts := httptest.NewServer(srv.Handler())

		var resp struct {
			Epoch uint64 `json:"epoch"`
			Items []struct {
				Item  int32   `json:"item"`
				Score float64 `json:"score"`
			} `json:"items"`
		}
		get := func(path string) int {
			t.Helper()
			r, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			if r.StatusCode == http.StatusOK {
				if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
					t.Fatal(err)
				}
			}
			return r.StatusCode
		}

		for user := 0; user < 30; user++ {
			if code := get(fmt.Sprintf("/v1/recommend?user=%d&n=10", user*31)); code != http.StatusOK {
				t.Fatalf("user %d: HTTP %d", user*31, code)
			}
			want := oracle.Recommend(ds, user*31, 10)
			if len(resp.Items) != len(want) {
				t.Fatalf("user %d: %d items, want %d", user*31, len(resp.Items), len(want))
			}
			for i, it := range resp.Items {
				if int(it.Item) != want[i].Item || it.Score != want[i].Score {
					t.Fatalf("prec %v user %d rec %d: served (%d, %v), Recommend (%d, %v)",
						prec, user*31, i, it.Item, it.Score, want[i].Item, want[i].Score)
				}
			}
		}

		// Error surface: out-of-range user and bad parameters.
		if code := get(fmt.Sprintf("/v1/recommend?user=%d&n=5", ds.Users())); code != http.StatusNotFound {
			t.Fatalf("out-of-range user: HTTP %d", code)
		}
		if code := get("/v1/recommend?user=abc"); code != http.StatusBadRequest {
			t.Fatalf("bad user: HTTP %d", code)
		}
		if code := get("/v1/recommend?user=0&n=99999"); code != http.StatusBadRequest {
			t.Fatalf("oversized n: HTTP %d", code)
		}
		ts.Close()
	}

	// An empty store (watch mode before the first checkpoint) serves
	// 503, not garbage.
	srv := serve.NewServer(serve.Config{Store: serve.NewStore()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	r, err := ts.Client().Get(ts.URL + "/v1/recommend?user=0")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty store: HTTP %d", r.StatusCode)
	}
}
