package main

// The -dist mode emits BENCH_dist.json: the machine-to-machine data
// plane's performance record. It drives whole netlink.Loopback
// clusters — real TCP sockets, rendezvous, heartbeats — inside one
// process, training NOMAD end-to-end at several machine counts on
// both wire sides of the NOMAD_REFERENCE_WIRE A/B (the legacy
// allocating codec vs the pooled arena-backed one), and pairs that
// with codec microbenchmarks measuring the frame encode/decode paths
// in isolation (tokens/s, ns/token and allocations per op).
//
//	go run ./cmd/nomad-bench -dist BENCH_dist.json
//	go run ./cmd/nomad-bench -dist out.json -distmachines 2,4 -distreps 5
//
// Both wire sides run interleaved rep by rep in one process (the
// benchmark boxes are small shared VMs; interleaving lands both sides
// under the same machine conditions), with the A/B switch flipped via
// cluster.SetReferenceWire between runs — the switch is consulted
// when links and senders are constructed, so flipping it between
// Session.Run calls is exact. Like -sweep, the machine list and rep
// count are adjustable so CI can smoke a tiny configuration; the
// datasets, seed, rank and epoch budget are pinned.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	nomad "nomad"
	"nomad/internal/benchenv"
	"nomad/internal/cluster"
	"nomad/internal/netlink"
)

// distDoc is the BENCH_dist.json shape.
type distDoc struct {
	Env      benchenv.Env `json:"env"`
	Protocol distProtocol `json:"protocol"`
	EndToEnd []distPoint  `json:"end_to_end"`
	Codec    []codecPoint `json:"codec_microbench"`
}

type distProtocol struct {
	// Datasets maps profile name to scale: netflix (≈2.8K ratings per
	// item token — arithmetic-bound) and longtail (≈4.5 —
	// communication-bound), so the A/B shows the wire path in both
	// regimes.
	Datasets map[string]float64 `json:"datasets"`
	K        int                `json:"k"`
	Seed     uint64             `json:"seed"`
	Epochs   int                `json:"epochs"`
	Reps     int                `json:"reps"`
	Workers  int                `json:"workers_per_machine"`
	Machines []int              `json:"machines"`
	Backend  string             `json:"backend"`
	// Chaos is the fault-injection spec the runs were subjected to
	// (empty for undisturbed measurements). Chaos runs enable failover.
	Chaos string `json:"chaos,omitempty"`
}

// distPoint is one (dataset, machines, wire side) end-to-end training
// measurement over the TCP loopback backend.
type distPoint struct {
	Dataset      string  `json:"dataset"`
	Machines     int     `json:"machines"`
	Wire         string  `json:"wire"`
	BestUPS      float64 `json:"best_updates_per_sec"`
	MeanUPS      float64 `json:"mean_updates_per_sec"`
	TokensPerSec float64 `json:"approx_wire_tokens_per_sec"`
	BytesSent    int64   `json:"bytes_sent"`
	MessagesSent int64   `json:"messages_sent"`
	FinalRMSE    float64 `json:"final_rmse"`
	Updates      int64   `json:"updates"`
	// RecoveryMs is the median failover detection→resume latency
	// across the measured reps (accumulated in a benchenv.Histogram,
	// the same latency machinery nomad-loadgen reports with), present
	// only on -chaos runs that killed a machine.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	// ResizeJoinMs / ResizeDrainMs are the median request→resume
	// latencies of elastic membership changes, present only on -chaos
	// runs whose schedule joins or drains a machine.
	ResizeJoinMs  float64 `json:"resize_join_ms,omitempty"`
	ResizeDrainMs float64 `json:"resize_drain_ms,omitempty"`
}

// codecPoint is one isolated codec measurement: a §3.5-sized token
// batch moving through the frame encoder or decoder with no sockets
// and no SGD.
type codecPoint struct {
	Op           string  `json:"op"` // "encode" or "decode"
	Wire         string  `json:"wire"`
	K            int     `json:"k"`
	BatchTokens  int     `json:"batch_tokens"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	NsPerToken   float64 `json:"ns_per_token"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// distWireSides is the A/B: the legacy allocating wire path and the
// pooled arena-backed one, in measurement order.
var distWireSides = []struct {
	name string
	ref  bool
}{{"reference", true}, {"pooled", false}}

// runDist measures the distributed data plane and writes the record.
// A non-empty chaos spec subjects every end-to-end run to that fault
// (with failover enabled) and records the recovery latency.
func runDist(path string, machineList []int, reps int, chaos string) error {
	const (
		seed   = 7
		epochs = 2
		k      = 16
	)
	profiles := []struct {
		name  string
		scale float64
	}{{"netflix", 0.0005}, {"longtail", 0.05}}
	doc := distDoc{
		Env: benchenv.Capture(),
		Protocol: distProtocol{Datasets: map[string]float64{}, K: k, Seed: seed,
			Epochs: epochs, Reps: reps, Workers: 1, Machines: machineList,
			Backend: "tcp-loopback", Chaos: chaos},
	}
	defer cluster.SetReferenceWire(false)
	for _, prof := range profiles {
		doc.Protocol.Datasets[prof.name] = prof.scale
		ds, err := nomad.Synthesize(prof.name, prof.scale, seed)
		if err != nil {
			return err
		}
		for _, machines := range machineList {
			pts := make([]distPoint, len(distWireSides))
			recovery := make([]benchenv.Histogram, len(distWireSides))
			resizeJoin := make([]benchenv.Histogram, len(distWireSides))
			resizeDrain := make([]benchenv.Histogram, len(distWireSides))
			for i, side := range distWireSides {
				pts[i] = distPoint{Dataset: prof.name, Machines: machines, Wire: side.name}
			}
			// Interleave: warm-up rep (rep 0) plus reps measured, both
			// sides back to back within each rep.
			for rep := 0; rep < reps+1; rep++ {
				for i, side := range distWireSides {
					cluster.SetReferenceWire(side.ref)
					res, recoveryMs, resizeMs, err := runDistTraining(ds, machines, seed, epochs, chaos)
					if err != nil {
						return fmt.Errorf("%s p=%d %s wire: %w", prof.name, machines, side.name, err)
					}
					if rep == 0 {
						continue // warm-up (page faults, listener ramp-up)
					}
					pt := &pts[i]
					ups := float64(res.Updates) / res.Seconds
					pt.MeanUPS += ups / float64(reps)
					if recoveryMs > 0 {
						recovery[i].Record(time.Duration(recoveryMs * float64(time.Millisecond)))
					}
					for _, ms := range resizeMs["join"] {
						resizeJoin[i].Record(time.Duration(ms * float64(time.Millisecond)))
					}
					for _, ms := range resizeMs["drain"] {
						resizeDrain[i].Record(time.Duration(ms * float64(time.Millisecond)))
					}
					if ups > pt.BestUPS {
						pt.BestUPS = ups
						pt.FinalRMSE = res.TestRMSE
						pt.Updates = res.Updates
						pt.BytesSent = res.BytesSent
						pt.MessagesSent = res.MessagesSent
						pt.TokensPerSec = approxWireTokens(res.BytesSent, res.MessagesSent, k) / res.Seconds
					}
				}
			}
			for i := range pts {
				if recovery[i].Count() > 0 {
					pts[i].RecoveryMs = float64(recovery[i].Quantile(0.5).Nanoseconds()) / 1e6
				}
				if resizeJoin[i].Count() > 0 {
					pts[i].ResizeJoinMs = float64(resizeJoin[i].Quantile(0.5).Nanoseconds()) / 1e6
				}
				if resizeDrain[i].Count() > 0 {
					pts[i].ResizeDrainMs = float64(resizeDrain[i].Quantile(0.5).Nanoseconds()) / 1e6
				}
			}
			for i := range pts {
				doc.EndToEnd = append(doc.EndToEnd, pts[i])
				fmt.Printf("   [dist: %s p=%d %s wire: best %.2fM updates/s, ≈%.2fM wire tokens/s, rmse %.4f]\n",
					prof.name, machines, pts[i].Wire, pts[i].BestUPS/1e6, pts[i].TokensPerSec/1e6, pts[i].FinalRMSE)
			}
		}
	}
	for _, side := range distWireSides {
		enc, dec := codecBench(side.ref, k, 100)
		doc.Codec = append(doc.Codec, enc, dec)
		fmt.Printf("   [dist: codec %s wire: encode %.1fM tokens/s (%.1f allocs/op), decode %.1fM tokens/s (%.1f allocs/op)]\n",
			side.name, enc.TokensPerSec/1e6, enc.AllocsPerOp, dec.TokensPerSec/1e6, dec.AllocsPerOp)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runDistTraining is one end-to-end NOMAD run over a TCP loopback
// cluster: real sockets, one worker per machine, the async runner.
// With a chaos spec, failover is enabled and the recovery latency (ms,
// 0 when no failover happened) plus the per-kind elastic resize
// latencies (ms) are returned alongside the result.
func runDistTraining(ds *nomad.Dataset, machines int, seed uint64, epochs int, chaos string) (*nomad.Result, float64, map[string][]float64, error) {
	opts := []nomad.Option{
		nomad.WithWorkers(1),
		nomad.WithSeed(seed),
		nomad.WithCluster(machines, "tcp"),
		nomad.WithStopConditions(nomad.MaxEpochs(epochs)),
	}
	if chaos != "" {
		opts = append(opts, nomad.WithFailover(), nomad.WithChaos(chaos))
	}
	s, err := nomad.NewSession(ds, opts...)
	if err != nil {
		return nil, 0, nil, err
	}
	recoveryMs := 0.0
	resizeMs := map[string][]float64{}
	done := make(chan struct{})
	cancelSub := func() {}
	if chaos != "" {
		var events <-chan nomad.Event
		events, cancelSub = s.Subscribe(64)
		go func() {
			defer close(done)
			for e := range events {
				switch ev := e.(type) {
				case nomad.PeerRecoveredEvent:
					recoveryMs = ev.RecoverySeconds * 1e3
				case nomad.ResizeEvent:
					resizeMs[ev.Kind] = append(resizeMs[ev.Kind], ev.Seconds*1e3)
				}
			}
		}()
	} else {
		close(done)
	}
	res, err := s.Run(context.Background())
	cancelSub()
	<-done
	return res, recoveryMs, resizeMs, err
}

// approxWireTokens estimates how many tokens crossed the wire from
// the link's byte/message accounting: subtracting the 20-byte frame
// header and 12-byte batch header per message leaves token data at
// 4+8k bytes each. Heartbeats and control frames make this a slight
// under-count, hence "approx" in the record.
func approxWireTokens(bytesSent, msgs int64, k int) float64 {
	data := bytesSent - msgs*32
	if data < 0 {
		return 0
	}
	return float64(data) / float64(4+8*k)
}

// codecBench measures one wire side's frame encode and decode in
// isolation: a batchTokens-token rank-k batch per op, reporting
// tokens/s, ns/token and allocations per op. The reference side
// reproduces the legacy shape (fresh payload and frame buffers per
// frame, per-token vector allocation on decode); the pooled side uses
// the reusable-buffer single-copy paths the TCP link runs in steady
// state.
func codecBench(ref bool, k, batchTokens int) (enc, dec codecPoint) {
	const iters = 20000
	wire := "pooled"
	if ref {
		wire = "reference"
	}
	batch := buildCodecBatch(batchTokens, k)

	var encode func()
	var wbuf []byte
	if ref {
		encode = func() {
			payload, err := netlink.AppendTokenBatch(nil, batch, k)
			if err != nil {
				panic(err)
			}
			wbuf = netlink.AppendFrame(make([]byte, 0, 20+len(payload)), netlink.FrameTokens, 1, payload)
		}
	} else {
		encode = func() {
			var err error
			wbuf, err = netlink.AppendTokenFrame(wbuf[:0], 1, batch, k)
			if err != nil {
				panic(err)
			}
		}
	}
	encode() // warm
	encAllocs := testing.AllocsPerRun(100, encode)
	start := time.Now()
	for i := 0; i < iters; i++ {
		encode()
	}
	encSecs := time.Since(start).Seconds()

	frame := append([]byte(nil), wbuf...)
	rd := bytes.NewReader(frame)
	var rbuf []byte
	arena := cluster.NewBatchBuf()
	var decode func()
	if ref {
		decode = func() {
			rd.Reset(frame)
			f, err := netlink.ReadFrame(rd)
			if err != nil {
				panic(err)
			}
			if _, err := netlink.DecodeTokenBatch(f.Payload, k); err != nil {
				panic(err)
			}
		}
	} else {
		decode = func() {
			rd.Reset(frame)
			var f netlink.Frame
			var err error
			f, rbuf, err = netlink.ReadFrameReuse(rd, rbuf)
			if err != nil {
				panic(err)
			}
			if _, err := netlink.DecodeTokenBatchInto(f.Payload, k, arena); err != nil {
				panic(err)
			}
		}
	}
	decode() // warm
	decAllocs := testing.AllocsPerRun(100, decode)
	start = time.Now()
	for i := 0; i < iters; i++ {
		decode()
	}
	decSecs := time.Since(start).Seconds()

	tok := float64(iters * batchTokens)
	enc = codecPoint{Op: "encode", Wire: wire, K: k, BatchTokens: batchTokens,
		TokensPerSec: tok / encSecs, NsPerToken: encSecs * 1e9 / tok, AllocsPerOp: encAllocs}
	dec = codecPoint{Op: "decode", Wire: wire, K: k, BatchTokens: batchTokens,
		TokensPerSec: tok / decSecs, NsPerToken: decSecs * 1e9 / tok, AllocsPerOp: decAllocs}
	return enc, dec
}

// buildCodecBatch materializes a batch from an arena the way a Sender
// flush does.
func buildCodecBatch(tokens, k int) cluster.TokenBatch {
	buf := cluster.NewBatchBuf()
	vec := make([]float64, k)
	for i := 0; i < tokens; i++ {
		for c := range vec {
			vec[c] = float64(i*k+c) * 0.25
		}
		buf.Add(int32(i), vec)
	}
	return buf.Batch(tokens)
}
