package main

// The -sweep mode emits BENCH_scaling.json: NOMAD's shared-memory
// multi-core scaling record — steady updates/s as the worker count
// (and GOMAXPROCS with it) varies, across transport, kernel side and
// factor precision — plus a pure transport microbenchmark (tokens
// moved per second through each queue kind, no SGD) and a kernel
// microbenchmark (ns/op for the dot and fused-step kernels on both
// sides of the SIMD dispatch at both precisions). It is the
// shared-memory analog of the paper's Figure 4 scaling study, tracked
// as data so a kernel or transport regression is visible in review,
// not just in prose.
//
//	go run ./cmd/nomad-bench -sweep BENCH_scaling.json
//	go run ./cmd/nomad-bench -sweep out.json -sweepworkers 1,2,4,8 -sweepreps 5
//
// Unlike -json (a pinned two-sided A/B), the sweep's worker list and
// rep count are adjustable: CI smokes it with a tiny configuration so
// the harness cannot rot, while perf PRs record the full sweep. The
// protocol (EXPERIMENTS.md): every scaling point pins workers to
// cores, sets GOMAXPROCS to the worker count, and runs the four sides
// interleaved rep by rep so machine drift lands on all sides equally.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	nomad "nomad"
	"nomad/internal/benchenv"
	"nomad/internal/queue"
	"nomad/internal/vecmath"
)

// sweepDoc is the BENCH_scaling.json shape.
type sweepDoc struct {
	Env       benchenv.Env   `json:"env"`
	Protocol  sweepProtocol  `json:"protocol"`
	Scaling   []scalingPoint `json:"scaling"`
	Transport []microPoint   `json:"transport_microbench"`
	Kernel    []kernelPoint  `json:"kernel_microbench"`
}

type sweepProtocol struct {
	// Datasets maps profile name to scale: netflix (≈2.8K ratings per
	// item token — arithmetic-bound) and longtail (≈4.5 — transport-
	// bound), so the sweep shows scaling in both regimes.
	Datasets map[string]float64 `json:"datasets"`
	K        int                `json:"k"`
	Seed     uint64             `json:"seed"`
	Epochs   int                `json:"epochs"`
	Reps     int                `json:"reps"`
	// PinnedWorkers: every training run pins worker goroutines to OS
	// threads and (on linux) distinct cores; see WithPinnedWorkers.
	PinnedWorkers bool `json:"pinned_workers"`
}

// scalingPoint is one (dataset, workers, transport, kernels,
// precision) training measurement, taken with GOMAXPROCS set to the
// worker count.
type scalingPoint struct {
	Dataset      string  `json:"dataset"`
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Transport    string  `json:"transport"`
	Kernels      string  `json:"kernels"`   // "simd" or "portable"
	Precision    string  `json:"precision"` // "float64" or "float32"
	BestUPS      float64 `json:"steady_best_updates_per_sec"`
	MeanUPS      float64 `json:"steady_mean_updates_per_sec"`
	PerWorkerUPS float64 `json:"steady_best_updates_per_sec_per_worker"`
	FinalRMSE    float64 `json:"final_rmse"`
	TotalUpdates int64   `json:"updates"`
}

// microPoint is one (workers, kind) transport-only measurement: p
// endpoints circulating tokens with no SGD between pops.
type microPoint struct {
	Workers      int     `json:"workers"`
	Kind         string  `json:"kind"`
	TokensPerSec float64 `json:"tokens_per_sec"`
}

// kernelPoint is one isolated kernel measurement.
type kernelPoint struct {
	K         int     `json:"k"`
	Op        string  `json:"op"`        // "dot" or "fused_step"
	Kernels   string  `json:"kernels"`   // "simd" or "portable"
	Precision string  `json:"precision"` // "float64" or "float32"
	NsPerOp   float64 `json:"ns_per_op"`
}

// sweepSides are the training-sweep sides, interleaved within each
// rep: the shipping configuration (batched SPSC transport, SIMD
// kernels, float64), the legacy mutex transport it replaced, the
// portable-kernel side of the SIMD dispatch A/B, and the float32
// model. On hosts without AVX2+FMA the "simd" label degrades to
// "portable" (recorded as such), and the record's env block says why.
var sweepSides = []struct {
	transport queue.Kind
	simd      bool
	precision nomad.Precision
}{
	{queue.KindSPSC, true, nomad.Float64},
	{queue.KindMutex, true, nomad.Float64},
	{queue.KindSPSC, false, nomad.Float64},
	{queue.KindSPSC, true, nomad.Float32},
}

// microKinds is every transport in the tokens/s microbench.
var microKinds = []queue.Kind{queue.KindSPSC, queue.KindMutex, queue.KindLockFree, queue.KindChan}

// kernelSide applies the side's kernel dispatch and returns its label.
func kernelSide(simd bool) string {
	vecmath.SetSIMD(simd)
	if vecmath.SIMDEnabled() {
		return "simd"
	}
	return "portable"
}

// runSweep measures the worker sweep and writes doc to path.
func runSweep(path string, workerList []int, reps int) error {
	const (
		seed   = 7
		epochs = 4
	)
	profiles := []struct {
		name  string
		scale float64
	}{{"netflix", 0.0005}, {"longtail", 0.05}}
	doc := sweepDoc{
		Env: benchenv.Capture(),
		Protocol: sweepProtocol{Datasets: map[string]float64{}, K: 16, Seed: seed,
			Epochs: epochs, Reps: reps, PinnedWorkers: true},
	}
	defer vecmath.SetSIMD(vecmath.SIMDAvailable())
	defaultProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(defaultProcs)
	for _, prof := range profiles {
		doc.Protocol.Datasets[prof.name] = prof.scale
		ds, err := nomad.Synthesize(prof.name, prof.scale, seed)
		if err != nil {
			return err
		}
		for _, workers := range workerList {
			runtime.GOMAXPROCS(workers)
			pts := make([]scalingPoint, len(sweepSides))
			for i, side := range sweepSides {
				pts[i] = scalingPoint{Dataset: prof.name, Workers: workers,
					GOMAXPROCS: workers, Transport: side.transport.String(),
					Precision: side.precision.String()}
			}
			for rep := 0; rep < reps+1; rep++ {
				for i, side := range sweepSides {
					pts[i].Kernels = kernelSide(side.simd)
					s, err := nomad.NewSession(ds,
						nomad.WithWorkers(workers),
						nomad.WithSeed(seed),
						nomad.WithTransport(side.transport.String()),
						nomad.WithPrecision(side.precision),
						nomad.WithPinnedWorkers(),
						nomad.WithStopConditions(nomad.MaxEpochs(epochs)))
					if err != nil {
						return err
					}
					res, err := s.Run(context.Background())
					if err != nil {
						return err
					}
					if rep == 0 {
						continue // warm-up rep (page faults, scheduler ramp-up)
					}
					ups := float64(res.Updates) / res.Seconds
					pts[i].MeanUPS += ups / float64(reps)
					if ups > pts[i].BestUPS {
						pts[i].BestUPS = ups
						pts[i].FinalRMSE = res.TestRMSE
						pts[i].TotalUpdates = res.Updates
					}
				}
			}
			vecmath.SetSIMD(vecmath.SIMDAvailable())
			for i := range pts {
				pts[i].PerWorkerUPS = pts[i].BestUPS / float64(workers)
				doc.Scaling = append(doc.Scaling, pts[i])
				fmt.Printf("   [sweep: %s p=%d %s/%s/%s: best %.2fM updates/s (%.2fM/worker), rmse %.4f]\n",
					prof.name, workers, pts[i].Transport, pts[i].Kernels, pts[i].Precision,
					pts[i].BestUPS/1e6, pts[i].PerWorkerUPS/1e6, pts[i].FinalRMSE)
			}
		}
	}
	runtime.GOMAXPROCS(defaultProcs)
	doc.Kernel = kernelMicrobench()
	for _, workers := range workerList {
		for _, kind := range microKinds {
			tps := transportTokensPerSec(kind, workers)
			doc.Transport = append(doc.Transport, microPoint{
				Workers: workers, Kind: kind.String(), TokensPerSec: tps})
			fmt.Printf("   [sweep: transport micro p=%d %s: %.1fM tokens/s]\n",
				workers, kind.String(), tps/1e6)
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// transportTokensPerSec circulates tokens among p endpoints through
// the given transport with no work between pop and re-push — the pure
// per-token transport cost that the SGD loop pays on top of its
// arithmetic. Routing uses a cheap LCG on all kinds so the comparison
// isolates the queues themselves.
func transportTokensPerSec(kind queue.Kind, p int) float64 {
	const tokens = 1 << 10
	const movesPerWorker = 1 << 17
	totalMoves := int64(p) * movesPerWorker

	if kind.Resolve() == queue.KindSPSC {
		return meshTokensPerSec(p, tokens, totalMoves)
	}
	queues := make([]queue.Queue[int32], p)
	for q := 0; q < p; q++ {
		queues[q] = queue.New[int32](kind, 4*tokens)
	}
	for t := 0; t < tokens; t++ {
		queues[t%p].Push(int32(t))
	}
	var wg sync.WaitGroup
	var moved paddedCounter
	start := time.Now()
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rnd := uint64(q + 1)
			for n := int64(0); moved.load() < totalMoves; {
				tok, ok := queues[q].TryPop()
				if !ok {
					runtime.Gosched()
					continue
				}
				rnd = rnd*6364136223846793005 + 1442695040888963407
				queues[int(rnd>>33)%p].Push(tok)
				n++
				if n%256 == 0 {
					moved.add(256)
				}
			}
		}(q)
	}
	wg.Wait()
	return float64(totalMoves) / time.Since(start).Seconds()
}

// meshTokensPerSec is the SPSC side of the microbench: block pops,
// per-destination out-buffers, block flushes — the worker loop's
// transport pattern without the SGD.
func meshTokensPerSec(p, tokens int, totalMoves int64) float64 {
	const block = 64
	mesh := queue.NewMesh[int32](p, 4*tokens)
	for t := 0; t < tokens; t++ {
		mesh.Send(t%p, t%p, int32(t))
	}
	var wg sync.WaitGroup
	var moved paddedCounter
	start := time.Now()
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var in [block]int32
			out := make([][]int32, p)
			for d := range out {
				out[d] = make([]int32, 0, 2*block)
			}
			flush := func(d int) {
				if len(out[d]) == 0 {
					return
				}
				acc := mesh.SendBatch(q, d, out[d])
				rest := copy(out[d], out[d][acc:])
				out[d] = out[d][:rest]
			}
			rnd := uint64(q + 1)
			for n := int64(0); moved.load() < totalMoves; {
				k := mesh.RecvBatch(q, in[:])
				if k == 0 {
					for d := 0; d < p; d++ {
						flush(d)
					}
					runtime.Gosched()
					continue
				}
				for i := 0; i < k; i++ {
					rnd = rnd*6364136223846793005 + 1442695040888963407
					d := int(rnd>>33) % p
					out[d] = append(out[d], in[i])
					if len(out[d]) >= block {
						flush(d)
					}
				}
				n += int64(k)
				if n >= 256 {
					moved.add(n)
					n = 0
				}
			}
		}(q)
	}
	wg.Wait()
	return float64(totalMoves) / time.Since(start).Seconds()
}

// paddedCounter is a cache-line-padded atomic for the microbench's
// global move count, so the counter itself doesn't false-share.
type paddedCounter struct {
	_ [64]byte
	v atomic.Int64
	_ [64]byte
}

func (c *paddedCounter) add(n int64) { c.v.Add(n) }
func (c *paddedCounter) load() int64 { return c.v.Load() }

// kernelMicrobench times the dot and fused-step kernels in isolation
// on both sides of the SIMD dispatch at both precisions — the
// committed evidence for the asm kernels' speedup claims. Working sets
// are two K-length rows, so everything is L1-resident and the numbers
// measure arithmetic, not memory.
func kernelMicrobench() []kernelPoint {
	const iters = 1 << 19
	var out []kernelPoint
	sides := []bool{true}
	if vecmath.SIMDAvailable() {
		sides = []bool{true, false}
	}
	defer vecmath.SetSIMD(vecmath.SIMDAvailable())
	for _, k := range []int{8, 16, 32, 100} {
		for _, simd := range sides {
			label := kernelSide(simd)
			kern := vecmath.KernelFor(k)
			a := make([]float64, k)
			b := make([]float64, k)
			for i := range a {
				a[i] = 1 / float64(i+2)
				b[i] = 1 / float64(i+3)
			}
			var sink float64
			start := time.Now()
			for i := 0; i < iters; i++ {
				sink += kern.Dot(a, b)
			}
			out = append(out, kernelPoint{K: k, Op: "dot", Kernels: label,
				Precision: "float64", NsPerOp: 1e9 * time.Since(start).Seconds() / iters})
			start = time.Now()
			for i := 0; i < iters; i++ {
				sink += kern.Step(a, b, 0.5, 1e-9, 1e-9)
			}
			out = append(out, kernelPoint{K: k, Op: "fused_step", Kernels: label,
				Precision: "float64", NsPerOp: 1e9 * time.Since(start).Seconds() / iters})

			kern32 := vecmath.KernelFor32(k)
			a32 := make([]float32, k)
			b32 := make([]float32, k)
			for i := range a32 {
				a32[i] = float32(a[i])
				b32[i] = float32(b[i])
			}
			start = time.Now()
			for i := 0; i < iters; i++ {
				sink += float64(kern32.Dot(a32, b32))
			}
			out = append(out, kernelPoint{K: k, Op: "dot", Kernels: label,
				Precision: "float32", NsPerOp: 1e9 * time.Since(start).Seconds() / iters})
			start = time.Now()
			for i := 0; i < iters; i++ {
				sink += float64(kern32.Step(a32, b32, 0.5, 1e-9, 1e-9))
			}
			out = append(out, kernelPoint{K: k, Op: "fused_step", Kernels: label,
				Precision: "float32", NsPerOp: 1e9 * time.Since(start).Seconds() / iters})
			if sink == 0 { // keep the accumulator live
				fmt.Print("")
			}
		}
	}
	for _, p := range out {
		if p.K == 32 {
			fmt.Printf("   [sweep: kernel micro K=%d %s %s/%s: %.2f ns/op]\n",
				p.K, p.Op, p.Kernels, p.Precision, p.NsPerOp)
		}
	}
	return out
}

// parseWorkerList parses "1,2,4" into worker counts, in input order.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}
