package main

// The -json mode emits a machine-readable benchmark record so the
// repository's hot-path performance is tracked as data, not prose.
// BENCH_hotpath.json at the repository root is the committed
// trajectory: each perf PR re-runs
//
//	go run ./cmd/nomad-bench -json BENCH_hotpath.json
//
// and commits the result. One invocation measures ALL sides of the
// current PR's hot-path A/B — since the SIMD PR that is the portable
// Go kernels ("baseline") against the AVX2/FMA assembly kernels
// ("after") and the assembly kernels on a float32 model
// ("after_float32"), all on the shipping SPSC transport — interleaved
// rep by rep in one process, because the benchmark boxes are small
// shared VMs whose speed drifts between invocations: interleaving
// lands all sides under the same machine conditions, which separate
// runs cannot guarantee. The measured workload is fixed (the
// BenchmarkTrainNomadEpoch hot path, plus the fig5/fig6 experiments on
// the shipping configuration) so records stay comparable across PRs.
// (PR 3–5 records had transport A/Bs: mutex baseline vs spsc after.)

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	nomad "nomad"
	"nomad/internal/benchenv"
	"nomad/internal/experiments"
	"nomad/internal/vecmath"
)

// benchRecord is one measured side of the A/B.
type benchRecord struct {
	Env benchenv.Env `json:"env"`
	// Kernels records the vecmath side in use: "simd" for the AVX2/FMA
	// assembly kernels, "portable" for the pure-Go unrolled set (the
	// baseline of this PR's A/B; PR 3–5 records said "fused" for the
	// same thing). Transport is the token transport, "spsc" on every
	// side since PR 5's A/B closed.
	Kernels   string `json:"kernels"`
	Transport string `json:"transport"`
	// Precision is the factor-model element type of the measured runs.
	Precision string `json:"precision"`
	// Options are the experiment options the fig5/fig6 runs were
	// measured under — always jsonOptions, recorded so the file is
	// self-describing. Empty for the baseline record, which measures
	// only the hot path.
	Options *experiments.Options `json:"options,omitempty"`
	Hotpath hotpathStats         `json:"hotpath"`
	// TokenBound is the transport-bound companion workload: the
	// longtail profile's ≈4.5 ratings/item make per-token transport
	// cost, not SGD arithmetic, the worker loop's dominant term —
	// the regime the batched SPSC mesh exists for. (The pinned netflix
	// hotpath has ≈2.8K ratings/item, so there the transport is ≈0.1%
	// of the work and the A/B reads as parity; see EXPERIMENTS.md.)
	TokenBound  hotpathStats `json:"hotpath_token_transport"`
	Experiments []expRecord  `json:"experiments,omitempty"`
}

// hotpathStats measures the BenchmarkTrainNomadEpoch workload: NOMAD
// shared-memory training on the benchmark dataset through the public
// API. Epoch* fields replicate the benchmark exactly (one epoch,
// setup included); Steady* fields amortize setup over several epochs,
// which is the per-update throughput the paper's claims are about.
type hotpathStats struct {
	Dataset           string  `json:"dataset"`
	Scale             float64 `json:"scale"`
	Workers           int     `json:"workers"`
	Seed              uint64  `json:"seed"`
	Reps              int     `json:"reps"`
	EpochUpdates      int64   `json:"epoch_updates"`
	EpochBestUPS      float64 `json:"epoch_best_updates_per_sec"`
	EpochMeanUPS      float64 `json:"epoch_mean_updates_per_sec"`
	SteadyEpochs      int     `json:"steady_epochs"`
	SteadyUpdates     int64   `json:"steady_updates"`
	SteadyBestUPS     float64 `json:"steady_best_updates_per_sec"`
	SteadyMeanUPS     float64 `json:"steady_mean_updates_per_sec"`
	SteadyNsPerUpdate float64 `json:"steady_wall_ns_per_update"`
	FinalRMSE         float64 `json:"final_rmse"`
}

// expRecord summarizes one experiment's outcome: final RMSE per series
// (convergence figures) or the raw table (throughput figures).
type expRecord struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Series map[string]float64 `json:"series_final_rmse,omitempty"`
	Table  [][]string         `json:"table,omitempty"`
}

// jsonExperiments is the fixed experiment set of the record.
var jsonExperiments = []string{"fig5", "fig6L", "fig6R"}

// jsonOptions returns the pinned experiment options of the record.
// The -scale/-workers/... flags deliberately do not apply here:
// records are only useful if every PR measures the same thing.
func jsonOptions() experiments.Options {
	return experiments.Options{}.WithDefaults()
}

// runJSON measures every side of the A/B and merges them into path as
// "baseline", "after" and "after_float32".
func runJSON(path string) error {
	// Validate the merge target before spending minutes measuring.
	doc, err := loadDoc(path)
	if err != nil {
		return err
	}

	base := newRecord("portable", "spsc", "float64")
	after := newRecord("simd", "spsc", "float64")
	f32 := newRecord("simd", "spsc", "float32")
	if err := measureHotpathAB(&base, &after, &f32); err != nil {
		return fmt.Errorf("hotpath: %w", err)
	}

	// Figure regressions are tracked on the shipping configuration.
	vecmath.SetSIMD(vecmath.SIMDAvailable())
	opts := jsonOptions()
	after.Options = &opts
	for _, id := range jsonExperiments {
		res, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		er := expRecord{ID: res.ID, Title: res.Title}
		if len(res.Series) > 0 {
			er.Series = make(map[string]float64, len(res.Series))
			for _, s := range res.Series {
				er.Series[s.Label] = s.Final()
			}
		}
		if res.Table != nil {
			er.Table = append([][]string{res.Table.Headers}, res.Table.Rows...)
		}
		after.Experiments = append(after.Experiments, er)
		fmt.Printf("   [json: %s done]\n", id)
	}

	return writeDoc(path, doc, map[string]benchRecord{
		"baseline": base, "after": after, "after_float32": f32})
}

func newRecord(kernels, transport, precision string) benchRecord {
	return benchRecord{
		Env:       benchenv.Capture(),
		Kernels:   kernels,
		Transport: transport,
		Precision: precision,
	}
}

// measureHotpathAB runs the BenchmarkTrainNomadEpoch workload plus
// the token-transport-bound longtail workload on every kernel side,
// alternating sides within each rep so machine-speed drift cancels
// out of the comparison.
func measureHotpathAB(base, after, f32 *benchRecord) error {
	// Best-of-9 on each workload: the best rep is the least-disturbed
	// one — the standard way to compare compute-bound code under noise.
	const (
		profile   = "netflix"
		scale     = 0.0005
		ltProfile = "longtail"
		ltScale   = 0.05
		workers   = 2
		seed      = 7
		reps      = 9
		steadyE   = 5
	)
	sides := []struct {
		rec  *benchRecord
		simd bool
		prec nomad.Precision
	}{
		{base, false, nomad.Float64},
		{after, true, nomad.Float64},
		{f32, true, nomad.Float32},
	}
	for _, s := range sides {
		s.rec.Hotpath = hotpathStats{Dataset: profile, Scale: scale, Workers: workers,
			Seed: seed, Reps: reps, SteadyEpochs: steadyE}
		s.rec.TokenBound = hotpathStats{Dataset: ltProfile, Scale: ltScale, Workers: workers,
			Seed: seed, Reps: reps, SteadyEpochs: steadyE}
	}
	ds, err := nomad.Synthesize(profile, scale, seed)
	if err != nil {
		return err
	}
	lt, err := nomad.Synthesize(ltProfile, ltScale, seed)
	if err != nil {
		return err
	}
	train := func(ds *nomad.Dataset, epochs int, prec nomad.Precision) (*nomad.Result, error) {
		// A fresh Session per rep: the pinned benchmark measures cold
		// runs, not resumed continuations.
		s, err := nomad.NewSession(ds,
			nomad.WithWorkers(workers),
			nomad.WithSeed(seed),
			nomad.WithPrecision(prec),
			nomad.WithStopConditions(nomad.MaxEpochs(epochs)))
		if err != nil {
			return nil, err
		}
		return s.Run(context.Background())
	}
	defer vecmath.SetSIMD(vecmath.SIMDAvailable())
	// Warm-up reps: first-run effects (page faults, scheduler ramp-up)
	// belong to no side of the A/B. Each rep measures, per side:
	// netflix single-epoch + steady, then longtail single-epoch + steady.
	if _, err := train(ds, 1, nomad.Float64); err != nil {
		return err
	}
	if _, err := train(lt, 1, nomad.Float64); err != nil {
		return err
	}
	steady := func(ds *nomad.Dataset, st *hotpathStats, prec nomad.Precision) error {
		sres, err := train(ds, steadyE, prec)
		if err != nil {
			return err
		}
		sups := float64(sres.Updates) / sres.Seconds
		st.SteadyMeanUPS += sups / reps
		if sups > st.SteadyBestUPS {
			st.SteadyBestUPS = sups
			st.SteadyUpdates = sres.Updates
			st.SteadyNsPerUpdate = 1e9 * sres.Seconds / float64(sres.Updates)
			st.FinalRMSE = sres.TestRMSE
		}
		return nil
	}
	for i := 0; i < reps; i++ {
		for _, side := range sides {
			side.rec.Kernels = kernelSide(side.simd)
			res, err := train(ds, 1, side.prec)
			if err != nil {
				return err
			}
			ups := float64(res.Updates) / res.Seconds
			side.rec.Hotpath.EpochMeanUPS += ups / reps
			if ups > side.rec.Hotpath.EpochBestUPS {
				side.rec.Hotpath.EpochBestUPS = ups
				side.rec.Hotpath.EpochUpdates = res.Updates
			}
			if err := steady(ds, &side.rec.Hotpath, side.prec); err != nil {
				return err
			}
			ltres, err := train(lt, 1, side.prec)
			if err != nil {
				return err
			}
			ltups := float64(ltres.Updates) / ltres.Seconds
			side.rec.TokenBound.EpochMeanUPS += ltups / reps
			if ltups > side.rec.TokenBound.EpochBestUPS {
				side.rec.TokenBound.EpochBestUPS = ltups
				side.rec.TokenBound.EpochUpdates = ltres.Updates
			}
			if err := steady(lt, &side.rec.TokenBound, side.prec); err != nil {
				return err
			}
		}
	}
	vecmath.SetSIMD(vecmath.SIMDAvailable())
	for _, rec := range []struct {
		name string
		r    *benchRecord
	}{{"baseline", base}, {"after", after}, {"after_float32", f32}} {
		fmt.Printf("   [json: hotpath %s (%s/%s): best %.2fM updates/s steady (%.1f ns/update), %.2fM single-epoch, final RMSE %.4f]\n",
			rec.name, rec.r.Kernels, rec.r.Precision,
			rec.r.Hotpath.SteadyBestUPS/1e6, rec.r.Hotpath.SteadyNsPerUpdate,
			rec.r.Hotpath.EpochBestUPS/1e6, rec.r.Hotpath.FinalRMSE)
		fmt.Printf("   [json: token-bound %s (%s): best %.2fM updates/s steady (%.1f ns/update), final RMSE %.4f]\n",
			rec.name, rec.r.TokenBound.Dataset, rec.r.TokenBound.SteadyBestUPS/1e6,
			rec.r.TokenBound.SteadyNsPerUpdate, rec.r.TokenBound.FinalRMSE)
	}
	return nil
}

// loadDoc reads the JSON object at path (empty if absent), so labels
// from other runs survive a re-measure.
func loadDoc(path string) (map[string]json.RawMessage, error) {
	doc := map[string]json.RawMessage{}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("existing %s is not a JSON object: %w", path, err)
	}
	return doc, nil
}

// writeDoc stores the records under their labels and rewrites path,
// preserving any other labels in doc.
func writeDoc(path string, doc map[string]json.RawMessage, recs map[string]benchRecord) error {
	for label, rec := range recs {
		enc, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		doc[label] = enc
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
