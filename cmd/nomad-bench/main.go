// Command nomad-bench regenerates the tables and figures of the NOMAD
// paper's evaluation section on synthetic data.
//
// Usage:
//
//	nomad-bench -list
//	nomad-bench -exp fig5
//	nomad-bench -exp fig8,fig11 -scale 0.005 -machines 8
//	nomad-bench -exp all
//	nomad-bench -exp fig6R -transport mutex
//	nomad-bench -json BENCH_hotpath.json
//	nomad-bench -sweep BENCH_scaling.json
//
// Each experiment prints its convergence series (test RMSE against the
// figure's x-axis) or its table. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// The -json mode instead measures the fixed hot-path benchmark set
// (the BenchmarkTrainNomadEpoch workload on both sides of the token-
// transport A/B, plus fig5/fig6) and merges machine-readable records
// into the given file; see json.go and the committed BENCH_hotpath.json
// for the protocol. The -sweep mode records worker scaling (sweep.go,
// BENCH_scaling.json) and the -dist mode records the TCP data plane
// (dist.go, BENCH_dist.json).
//
// -cpuprofile and -memprofile wrap whatever mode was selected in the
// standard pprof collectors, so perf PRs can attach profiles of the
// exact benchmark workload they changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nomad/internal/experiments"
	"nomad/internal/queue"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code instead of os.Exit, so deferred
// profile flushing survives every exit path.
func run() int {
	var (
		exp       = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		scale     = flag.Float64("scale", 0.002, "dataset scale (fraction of the paper's Table 2 sizes)")
		epochs    = flag.Int("epochs", 10, "training epochs per run (NOMAD scaling figures)")
		seconds   = flag.Float64("seconds", 1.5, "wall-clock budget per run (solver comparison figures)")
		k         = flag.Int("k", 16, "latent dimension")
		workers   = flag.Int("workers", 4, "worker threads per machine")
		machines  = flag.Int("machines", 4, "machines for distributed experiments")
		seed      = flag.Uint64("seed", 42, "random seed")
		tsvDir    = flag.String("tsv", "", "also write each series as a TSV file into this directory")
		jsonPath  = flag.String("json", "", "measure the fixed hot-path A/B benchmark set (baseline + after, interleaved) and merge the records into this JSON file")
		transport = flag.String("transport", "", "token transport for -exp runs: auto, spsc, mutex, lockfree, chan")
		sweepPath = flag.String("sweep", "", "measure the worker-scaling sweep (updates/s vs workers per transport, plus the transport tokens/s microbench) and write it to this JSON file")
		sweepWkrs = flag.String("sweepworkers", "1,2,4", "comma-separated worker counts for -sweep")
		sweepReps = flag.Int("sweepreps", 3, "measured reps per -sweep point (plus one warm-up)")
		distPath  = flag.String("dist", "", "measure the TCP data plane (loopback clusters on both wire sides, plus codec microbenchmarks) and write it to this JSON file")
		distMachs = flag.String("distmachines", "2,4", "comma-separated machine counts for -dist")
		distReps  = flag.Int("distreps", 3, "measured reps per -dist point (plus one warm-up)")
		distChaos = flag.String("chaos", "", "fault injection for -dist runs, e.g. kill:rank=2,at=mid-epoch (enables failover, adds recovery_ms to the record)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nomad-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "nomad-bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	kind, err := queue.KindByName(*transport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nomad-bench: %v\n", err)
		return 2
	}
	opts := experiments.Options{
		Scale:     *scale,
		Epochs:    *epochs,
		Seconds:   *seconds,
		K:         *k,
		Workers:   *workers,
		Machines:  *machines,
		Seed:      *seed,
		Transport: kind,
	}

	if *sweepPath != "" {
		// Like -json, the sweep's training protocol is pinned so records
		// stay comparable; reject tuning flags rather than silently
		// ignore them. Only the worker list and rep count are knobs.
		if clash := clashingFlags("sweep", "sweepworkers", "sweepreps"); len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "nomad-bench: -sweep measures a pinned protocol and cannot be combined with %s\n",
				strings.Join(clash, ", "))
			return 2
		}
		wl, err := parseWorkerList(*sweepWkrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: -sweepworkers: %v\n", err)
			return 2
		}
		if *sweepReps < 1 {
			fmt.Fprintln(os.Stderr, "nomad-bench: -sweepreps must be ≥ 1")
			return 2
		}
		if err := runSweep(*sweepPath, wl, *sweepReps); err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: sweep: %v\n", err)
			return 1
		}
		fmt.Printf("   [sweep record written to %s]\n", *sweepPath)
		return 0
	}
	if *distPath != "" {
		// Same contract as -sweep: the datasets, seed, rank and epoch
		// budget are pinned; only the machine list and rep count vary.
		if clash := clashingFlags("dist", "distmachines", "distreps", "chaos"); len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "nomad-bench: -dist measures a pinned protocol and cannot be combined with %s\n",
				strings.Join(clash, ", "))
			return 2
		}
		ml, err := parseWorkerList(*distMachs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: -distmachines: %v\n", err)
			return 2
		}
		for _, m := range ml {
			if m < 2 {
				fmt.Fprintln(os.Stderr, "nomad-bench: -distmachines entries must be ≥ 2 (a cluster needs peers)")
				return 2
			}
			if *distChaos != "" && m < 3 {
				fmt.Fprintln(os.Stderr, "nomad-bench: -chaos runs use failover, which needs ≥ 3 machines per -distmachines entry")
				return 2
			}
		}
		if *distReps < 1 {
			fmt.Fprintln(os.Stderr, "nomad-bench: -distreps must be ≥ 1")
			return 2
		}
		if err := runDist(*distPath, ml, *distReps, *distChaos); err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: dist: %v\n", err)
			return 1
		}
		fmt.Printf("   [dist record written to %s]\n", *distPath)
		return 0
	}
	if *jsonPath != "" {
		// The -json set is pinned so records stay comparable across
		// PRs; reject any tuning flag rather than silently ignore it.
		if clash := clashingFlags("json"); len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "nomad-bench: -json measures a pinned benchmark set and cannot be combined with %s\n",
				strings.Join(clash, ", "))
			return 2
		}
		if err := runJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: json: %v\n", err)
			return 1
		}
		fmt.Printf("   [json baseline+after+after_float32 records written to %s]\n", *jsonPath)
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nomad-bench: -exp required (or -list, -json, -sweep, -dist); e.g. -exp fig5")
		return 2
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: %s: %v\n", id, err)
			return 1
		}
		if err := experiments.Render(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "nomad-bench: render %s: %v\n", id, err)
			return 1
		}
		if *tsvDir != "" {
			if err := writeTSV(*tsvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "nomad-bench: tsv %s: %v\n", id, err)
				return 1
			}
		}
		fmt.Printf("   [%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	return 0
}

// clashingFlags returns every explicitly set flag that is neither one
// of the mode's own knobs nor a profile flag (-cpuprofile and
// -memprofile compose with every mode — that is their point).
func clashingFlags(allowed ...string) []string {
	ok := map[string]bool{"cpuprofile": true, "memprofile": true}
	for _, a := range allowed {
		ok[a] = true
	}
	var clash []string
	flag.Visit(func(f *flag.Flag) {
		if !ok[f.Name] {
			clash = append(clash, "-"+f.Name)
		}
	})
	return clash
}

// writeTSV saves each series as "<id>_<label>.tsv" with
// seconds/updates/rmse columns, ready for external plotting tools.
func writeTSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sanitize := strings.NewReplacer(" ", "_", "/", "-", "=", "-", "λ", "lambda")
	for _, s := range res.Series {
		name := filepath.Join(dir, res.ID+"_"+sanitize.Replace(s.Label)+".tsv")
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(f, "seconds\tupdates\ttestRMSE"); err != nil {
			f.Close()
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(f, "%.4f\t%d\t%.6f\n", p.Seconds, p.Updates, p.RMSE); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
