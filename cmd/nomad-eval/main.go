// Command nomad-eval evaluates a saved model against a dataset:
// prediction RMSE/MAE-style accuracy plus top-K ranking quality
// (precision@K, recall@K, NDCG@K).
//
// Usage:
//
//	nomad-train -profile netflix -scale 0.002 -model model.bin
//	nomad-eval -model model.bin -profile netflix -scale 0.002 -k 10 -relevant 4
package main

import (
	"flag"
	"fmt"
	"os"

	"nomad"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model file written by nomad-train -model")
		input     = flag.String("input", "", "rating matrix file; empty = synthetic")
		profile   = flag.String("profile", "netflix", "synthetic profile")
		scale     = flag.Float64("scale", 0.002, "synthetic dataset scale")
		testFrac  = flag.Float64("test", 0.1, "test fraction for -input files")
		seed      = flag.Uint64("seed", 42, "random seed (must match training for synthetic data)")
		k         = flag.Int("k", 10, "ranking cutoff K")
		relevant  = flag.Float64("relevant", 4.0, "minimum held-out rating counted as relevant")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "nomad-eval: -model required")
		os.Exit(2)
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := nomad.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var ds *nomad.Dataset
	if *input == "" {
		ds, err = nomad.Synthesize(*profile, *scale, *seed)
	} else {
		var in *os.File
		in, err = os.Open(*input)
		if err == nil {
			ds, err = nomad.ReadDataset(in, *testFrac, *seed)
			in.Close()
		}
	}
	if err != nil {
		fatal(err)
	}
	if model.Users() != ds.Users() || model.Items() != ds.Items() {
		fatal(fmt.Errorf("model is %d×%d but dataset is %d×%d",
			model.Users(), model.Items(), ds.Users(), ds.Items()))
	}

	fmt.Printf("model: rank %d over %d users × %d items\n", model.Rank(), model.Users(), model.Items())
	fmt.Printf("test RMSE: %.6f over %d held-out ratings\n", ds.RMSE(model), ds.TestSize())
	rq := ds.Ranking(model, *k, *relevant)
	fmt.Printf("ranking over %d users (relevant ≥ %.1f):\n", rq.Users, *relevant)
	fmt.Printf("  precision@%-3d %.4f\n", rq.K, rq.PrecisionK)
	fmt.Printf("  recall@%-3d    %.4f\n", rq.K, rq.RecallK)
	fmt.Printf("  NDCG@%-3d      %.4f\n", rq.K, rq.NDCGK)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-eval:", err)
	os.Exit(1)
}
