// Command nomad-datagen writes a synthetic rating matrix, shaped like
// one of the paper's Table 2 datasets, to a text file usable by
// nomad-train -input.
//
// Usage:
//
//	nomad-datagen -profile yahoo -scale 0.001 -out yahoo.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"nomad"
)

func main() {
	var (
		profile = flag.String("profile", "netflix", "profile: netflix, yahoo, hugewiki")
		scale   = flag.Float64("scale", 0.002, "scale (fraction of the original dataset)")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	ds, err := nomad.Synthesize(*profile, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := ds.WriteTrainMatrix(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d users × %d items, %d ratings written\n",
		*profile, ds.Users(), ds.Items(), ds.TrainSize())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-datagen:", err)
	os.Exit(1)
}
