package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nomad"
	"nomad/internal/benchenv"
	"nomad/internal/cluster"
	"nomad/internal/netlink"
	"nomad/internal/partition"
	"nomad/internal/serve"
)

// benchRecord is the BENCH_serve.json document: the committed
// serving-latency record (see EXPERIMENTS.md for the protocol).
type benchRecord struct {
	Env         benchenv.Env `json:"env"`
	Dataset     string       `json:"dataset"`
	Scale       float64      `json:"scale"`
	Users       int          `json:"users"`
	Items       int          `json:"items"`
	Rank        int          `json:"rank"`
	TopN        int          `json:"topn"`
	TargetQPS   float64      `json:"target_qps"`
	DurationSec float64      `json:"duration_s"`
	Workers     int          `json:"workers"`
	SingleShard benchPhase   `json:"single_shard"`
	TwoShard    benchPhase   `json:"two_shard_loopback"`
}

// benchPhase is one serving topology's measurement.
type benchPhase struct {
	QPS    float64 `json:"qps"`
	Sent   int64   `json:"sent"`
	Non200 int64   `json:"non200"`
	Errors int64   `json:"errors"`
	// ScannedPerQuery is the mean number of items actually scored per
	// query; with the norm-bound pre-filter it should be a small
	// fraction of the catalog.
	ScannedPerQuery float64                 `json:"scanned_per_query"`
	PrunedPerQuery  float64                 `json:"pruned_per_query"`
	Latency         benchenv.LatencySummary `json:"latency"`
}

// runBench self-hosts the full serving benchmark: train a model on
// the longtail profile (80K users × 600K items at scale 1), then
// measure request latency against a single-shard server and a 2-shard
// loopback mesh over real HTTP.
func runBench(scale, qps float64, duration time.Duration, topN, workers int, out string) error {
	if out == "" {
		out = "BENCH_serve.json"
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fmt.Printf("synthesizing longtail @%g...\n", scale)
	ds, err := nomad.Synthesize("longtail", scale, 42)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d users × %d items, %d ratings; training 1 epoch...\n",
		ds.Users(), ds.Items(), ds.TrainSize())
	trainWorkers := runtime.NumCPU()
	if trainWorkers > 8 {
		trainWorkers = 8
	}
	s, err := nomad.NewSession(ds,
		nomad.WithAlgorithm("nomad"),
		nomad.WithRank(16),
		nomad.WithWorkers(trainWorkers),
		nomad.WithSeed(42),
		nomad.WithStopConditions(nomad.MaxEpochs(1)),
	)
	if err != nil {
		return err
	}
	trained, err := s.Run(ctx)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "nomad-serve-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model-1.bin")
	f, err := os.Create(modelPath)
	if err != nil {
		return err
	}
	if err := trained.Model.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	rated := func(user int32) []int32 { return ds.RatedItems(int(user)) }
	rec := benchRecord{
		Env:         benchenv.Capture(),
		Dataset:     "longtail",
		Scale:       scale,
		Users:       ds.Users(),
		Items:       ds.Items(),
		Rank:        16,
		TopN:        topN,
		TargetQPS:   qps,
		DurationSec: duration.Seconds(),
		Workers:     workers,
	}

	fmt.Println("benchmarking single-shard serving...")
	rec.SingleShard, err = benchPhaseRun(ctx, modelPath, nil, rated, qps, duration, topN, workers, ds.Users())
	if err != nil {
		return err
	}
	fmt.Printf("  p99 %.3fms at %.0f qps (%.0f of %d items scanned/query)\n",
		rec.SingleShard.Latency.P99Us/1e3, rec.SingleShard.QPS, rec.SingleShard.ScannedPerQuery, ds.Items())

	fmt.Println("benchmarking 2-shard loopback serving...")
	shards := 2
	ep0, err := serve.LoadEpoch(modelPath, 1, nil)
	if err != nil {
		return err
	}
	md := ep0.Model
	owner := make([]int32, md.N)
	pt := partition.EqualRanges(md.N, shards)
	for j := range owner {
		owner[j] = int32(pt.Owner(j))
	}
	sum := serve.ConfigDigest(md.M, md.N, md.K, md.Precision(), shards)
	links, err := netlink.Loopback(ctx, shards, sum, owner, nil, netlink.Options{K: md.K})
	if err != nil {
		return err
	}
	shardStore := serve.NewStore()
	shardStore.Promote(&serve.Epoch{Seq: 1, Model: md, Index: serve.BuildIndex(md, pt.Part(1))})
	go serve.ServeShard(ctx, links[1], shardStore) //nolint:errcheck // torn down by cancel
	rec.TwoShard, err = benchPhaseRun(ctx, modelPath, &gatewayWiring{link: links[0], part: pt.Part(0)}, rated, qps, duration, topN, workers, ds.Users())
	if err != nil {
		return err
	}
	fmt.Printf("  p99 %.3fms at %.0f qps\n", rec.TwoShard.Latency.P99Us/1e3, rec.TwoShard.QPS)

	if err := writeJSON(out, rec); err != nil {
		return err
	}
	fmt.Printf("record written to %s\n", out)
	return nil
}

// gatewayWiring selects sharded serving inside benchPhaseRun.
type gatewayWiring struct {
	link cluster.Link
	part []int32 // gateway-local item shard
}

// benchPhaseRun boots one serving topology over a real HTTP listener
// and measures it with the shared open-loop generator.
func benchPhaseRun(ctx context.Context, modelPath string, gwWiring *gatewayWiring, rated func(int32) []int32, qps float64, duration time.Duration, topN, workers, users int) (benchPhase, error) {
	var phase benchPhase
	var owned []int32
	if gwWiring != nil {
		owned = gwWiring.part
	}
	ep, err := serve.LoadEpoch(modelPath, 1, owned)
	if err != nil {
		return phase, err
	}
	store := serve.NewStore()
	store.Promote(ep)
	cfg := serve.Config{Store: store, Rated: rated}
	if gwWiring != nil {
		gw := serve.NewGateway(gwWiring.link, store, 0)
		go gw.Dispatch()
		cfg.Gateway = gw
	}
	srv := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return phase, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "nomad-loadgen: bench server:", err)
		}
	}()
	defer hs.Close()

	res := runLoad(loadCfg{
		URL:      "http://" + ln.Addr().String(),
		QPS:      qps,
		Duration: duration,
		N:        topN,
		Workers:  workers,
		Users:    users,
		Seed:     1,
	})
	stats := srv.Snapshot()
	phase = benchPhase{
		QPS:     res.QPS(),
		Sent:    res.Sent,
		Non200:  res.Non200,
		Errors:  res.Errors,
		Latency: res.Hist.Summary(),
	}
	if stats.Requests > 0 {
		phase.ScannedPerQuery = float64(stats.Scanned) / float64(stats.Requests)
		phase.PrunedPerQuery = float64(stats.Pruned) / float64(stats.Requests)
	}
	return phase, nil
}
