// Command nomad-loadgen drives open-loop query load against a
// nomad-serve endpoint and reports an HDR-style latency distribution.
//
//	nomad-loadgen -url http://127.0.0.1:8080 -qps 500 -duration 10s
//
// Open-loop means requests are scheduled on a fixed clock regardless
// of how fast earlier ones complete, and each latency is measured
// from the request's *scheduled* time — so server stalls inflate the
// tail instead of silently thinning the arrival rate (the
// coordinated-omission trap closed-loop generators fall into).
//
// The CI serve jobs use it as an assertion harness:
//
//	-assert-p99 25ms   fails (exit 1) when the measured p99 exceeds the bound
//	-assert-ok         fails when any request got a non-200 or transport error
//	-verify-model m.bin [dataset flags]
//	                   fails unless sampled responses equal Model.Recommend
//	                   exactly (items, scores, order)
//
// With -bench it instead self-hosts the full serving benchmark
// protocol (train longtail, measure single-shard and 2-shard
// loopback) and writes BENCH_serve.json; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nomad"
	"nomad/internal/benchenv"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "nomad-serve base URL")
		qps      = flag.Float64("qps", 200, "open-loop arrival rate (requests/second)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		topN     = flag.Int("n", 10, "recommendations requested per query")
		workers  = flag.Int("workers", 16, "concurrent request workers")
		users    = flag.Int("users", 0, "user id range [0,users) to sample (0 = discover from /v1/stats)")
		seed     = flag.Uint64("seed", 1, "user sampling seed")
		out      = flag.String("out", "", "write the run record as JSON to this file")
		wait     = flag.Duration("wait", 10*time.Second, "wait up to this long for the server to accept connections before loading (0 = fail fast)")

		assertP99 = flag.Duration("assert-p99", 0, "exit 1 when p99 exceeds this (0 = no assertion)")
		assertOK  = flag.Bool("assert-ok", false, "exit 1 on any non-200 response or transport error")
		verify    = flag.String("verify-model", "", "model file: sampled responses must equal Model.Recommend exactly")
		input     = flag.String("input", "", "rating matrix file for -verify-model exclusion")
		profile   = flag.String("profile", "", "synthetic dataset profile for -verify-model exclusion")
		scale     = flag.Float64("scale", 0.002, "synthetic dataset scale")
		testFrac  = flag.Float64("test", 0.1, "test fraction for -input files")
		dsSeed    = flag.Uint64("dataset-seed", 42, "dataset seed (must match training)")

		bench      = flag.Bool("bench", false, "self-hosted serving benchmark; writes -out (default BENCH_serve.json)")
		benchScale = flag.Float64("bench-scale", 1.0, "longtail dataset scale for -bench")
	)
	flag.Parse()

	if *bench {
		if err := runBench(*benchScale, *qps, *duration, *topN, *workers, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *wait > 0 {
		if err := awaitServer(*url, *wait); err != nil {
			fatal(err)
		}
	}
	nUsers := *users
	if nUsers == 0 {
		var err error
		nUsers, err = discoverUsers(*url)
		if err != nil {
			fatal(fmt.Errorf("user range discovery (pass -users to skip): %w", err))
		}
	}

	res := runLoad(loadCfg{
		URL:      *url,
		QPS:      *qps,
		Duration: *duration,
		N:        *topN,
		Workers:  *workers,
		Users:    nUsers,
		Seed:     *seed,
	})
	sum := res.Hist.Summary()
	fmt.Printf("sent %d requests in %.2fs (%d workers, target %.0f qps)\n",
		res.Sent, res.Elapsed.Seconds(), *workers, *qps)
	fmt.Printf("latency p50 %.3fms  p90 %.3fms  p99 %.3fms  p99.9 %.3fms  max %.3fms\n",
		sum.P50Us/1e3, sum.P90Us/1e3, sum.P99Us/1e3, sum.P999Us/1e3, sum.MaxUs/1e3)

	// Machine-readable lines for the CI jobs.
	fmt.Printf("qps: %.1f\n", res.QPS())
	fmt.Printf("p50_ms: %.3f\n", sum.P50Us/1e3)
	fmt.Printf("p99_ms: %.3f\n", sum.P99Us/1e3)
	fmt.Printf("p999_ms: %.3f\n", sum.P999Us/1e3)
	fmt.Printf("non200: %d\n", res.Non200)
	fmt.Printf("errors: %d\n", res.Errors)
	fmt.Printf("epochs_seen: %s\n", res.EpochList())

	failed := false
	if *assertP99 > 0 {
		if p99 := time.Duration(sum.P99Us*1e3) * time.Nanosecond; p99 > *assertP99 {
			fmt.Printf("ASSERT p99 %v > bound %v\n", p99, *assertP99)
			failed = true
		} else {
			fmt.Printf("assert p99 %v <= %v: ok\n", p99, *assertP99)
		}
	}
	if *assertOK && (res.Non200 > 0 || res.Errors > 0) {
		fmt.Printf("ASSERT non-200 responses: %d, transport errors: %d\n", res.Non200, res.Errors)
		failed = true
	}
	if *verify != "" {
		ds, err := loadDataset(*input, *profile, *scale, *testFrac, *dsSeed)
		if err != nil {
			fatal(err)
		}
		if err := verifyAgainstModel(*url, *verify, ds, *topN, nUsers, *seed); err != nil {
			fmt.Printf("verify: FAIL: %v\n", err)
			failed = true
		} else {
			fmt.Println("verify: ok")
		}
	}

	if *out != "" {
		rec := runRecord{
			Env:      benchenv.Capture(),
			URL:      *url,
			TargetQ:  *qps,
			Duration: res.Elapsed.Seconds(),
			TopN:     *topN,
			Workers:  *workers,
			Users:    nUsers,
			Sent:     res.Sent,
			Non200:   res.Non200,
			Errors:   res.Errors,
			Epochs:   res.EpochSlice(),
			QPS:      res.QPS(),
			Latency:  sum,
		}
		if err := writeJSON(*out, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("record written to %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// runRecord is the -out JSON document.
type runRecord struct {
	Env      benchenv.Env            `json:"env"`
	URL      string                  `json:"url"`
	TargetQ  float64                 `json:"target_qps"`
	Duration float64                 `json:"duration_s"`
	TopN     int                     `json:"topn"`
	Workers  int                     `json:"workers"`
	Users    int                     `json:"users"`
	Sent     int64                   `json:"sent"`
	Non200   int64                   `json:"non200"`
	Errors   int64                   `json:"errors"`
	Epochs   []uint64                `json:"epochs_seen"`
	QPS      float64                 `json:"qps"`
	Latency  benchenv.LatencySummary `json:"latency"`
}

type loadCfg struct {
	URL      string
	QPS      float64
	Duration time.Duration
	N        int
	Workers  int
	Users    int
	Seed     uint64
}

type loadResult struct {
	Hist    benchenv.Histogram
	Sent    int64
	Non200  int64
	Errors  int64
	Elapsed time.Duration
	epochs  map[uint64]bool
}

func (r *loadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Elapsed.Seconds()
}

// EpochSlice returns the distinct model epochs observed in responses,
// ascending.
func (r *loadResult) EpochSlice() []uint64 {
	out := make([]uint64, 0, len(r.epochs))
	for e := range r.epochs {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (r *loadResult) EpochList() string {
	s := ""
	for i, e := range r.EpochSlice() {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(e)
	}
	return s
}

// recResponse is the subset of nomad-serve's response the generator
// inspects.
type recResponse struct {
	Epoch uint64 `json:"epoch"`
	Items []struct {
		Item  int32   `json:"item"`
		Score float64 `json:"score"`
	} `json:"items"`
}

// runLoad drives the open-loop schedule and merges per-worker
// histograms. Each worker owns a Histogram and an epoch set; nothing
// is shared on the hot path.
func runLoad(cfg loadCfg) loadResult {
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	total := int(cfg.Duration.Seconds() * cfg.QPS)
	// The schedule queue holds every send slot of the run, so a stalled
	// server queues timestamps (inflating measured latency) instead of
	// stalling the scheduler (thinning load).
	sched := make(chan time.Time, total+cfg.Workers)

	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Warm the connection pool and the server's code paths before the
	// clock starts, so the measured distribution is steady-state
	// serving latency rather than TCP and allocator cold starts. CI
	// launches the server and the generator together, so a refused
	// connection here is a boot race, not a measurement — it is retried
	// with capped backoff instead of leaking into the error counts.
	var warm sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		warm.Add(1)
		go func(w int) {
			defer warm.Done()
			url := fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", cfg.URL, w%cfg.Users, cfg.N)
			for i := 0; i < 3; i++ {
				resp, err := client.Get(url)
				for b := 10 * time.Millisecond; err != nil && b <= time.Second; b *= 2 {
					time.Sleep(b)
					resp, err = client.Get(url)
				}
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
					resp.Body.Close()
				}
			}
		}(w)
	}
	warm.Wait()

	type workerOut struct {
		hist   benchenv.Histogram
		non200 int64
		errors int64
		epochs map[uint64]bool
	}
	outs := make([]workerOut, cfg.Workers)
	var sent atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			o.epochs = make(map[uint64]bool)
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(w)*7919))
			for t0 := range sched {
				user := rng.Intn(cfg.Users)
				url := fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", cfg.URL, user, cfg.N)
				resp, err := client.Get(url)
				if err != nil {
					o.errors++
					sent.Add(1)
					continue
				}
				var body recResponse
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				// Drain the trailing bytes (the encoder's newline) so the
				// connection goes back to the keep-alive pool.
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
				resp.Body.Close()
				o.hist.Record(time.Since(t0))
				sent.Add(1)
				if resp.StatusCode != http.StatusOK {
					o.non200++
					continue
				}
				if decErr != nil {
					o.errors++
					continue
				}
				o.epochs[body.Epoch] = true
			}
		}(w)
	}

	start := time.Now()
	next := start
	for i := 0; i < total; i++ {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		sched <- next
		next = next.Add(interval)
	}
	close(sched)
	wg.Wait()
	res := loadResult{Elapsed: time.Since(start), Sent: sent.Load(), epochs: make(map[uint64]bool)}
	for i := range outs {
		res.Hist.Merge(&outs[i].hist)
		res.Non200 += outs[i].non200
		res.Errors += outs[i].errors
		for e := range outs[i].epochs {
			res.epochs[e] = true
		}
	}
	return res
}

// awaitServer polls the server with capped exponential backoff until
// it accepts a connection or the wait budget runs out. Any HTTP
// response — even an error status — proves the listener is up; only
// transport failures (connection refused during the server's boot)
// are retried.
func awaitServer(url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	backoff := 10 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not reachable after %v: %w", url, wait, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// discoverUsers reads the served model's user count from /v1/stats.
func discoverUsers(url string) (int, error) {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Users int `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Users <= 0 {
		return 0, fmt.Errorf("server reports no loaded model (users=0)")
	}
	return st.Users, nil
}

// verifyAgainstModel compares sampled live responses against
// Model.Recommend — items, scores and order must match exactly, the
// serving layer's bit-compatibility contract.
func verifyAgainstModel(url, modelPath string, ds *nomad.Dataset, topN, users int, seed uint64) error {
	f, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	md, err := nomad.LoadModel(f)
	f.Close()
	if err != nil {
		return err
	}
	if users > md.Users() {
		users = md.Users()
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	samples := 50
	if samples > users {
		samples = users
	}
	for s := 0; s < samples; s++ {
		user := rng.Intn(users)
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", url, user, topN))
		if err != nil {
			return err
		}
		var body recResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("user %d: %w", user, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("user %d: HTTP %d", user, resp.StatusCode)
		}
		want := md.Recommend(ds, user, topN)
		if len(body.Items) != len(want) {
			return fmt.Errorf("user %d: got %d items, want %d", user, len(body.Items), len(want))
		}
		for i, it := range body.Items {
			if int(it.Item) != want[i].Item || it.Score != want[i].Score {
				return fmt.Errorf("user %d rec %d: got (%d, %v), want (%d, %v)",
					user, i, it.Item, it.Score, want[i].Item, want[i].Score)
			}
		}
	}
	return nil
}

func loadDataset(input, profile string, scale, testFrac float64, seed uint64) (*nomad.Dataset, error) {
	if input == "" && profile == "" {
		return nil, nil
	}
	if input == "" {
		return nomad.Synthesize(profile, scale, seed)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nomad.ReadDataset(f, testFrac, seed)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-loadgen:", err)
	os.Exit(1)
}
