// Command nomad-train fits a matrix-completion model to a rating file
// (or a synthetic dataset) with any of the implemented solvers and
// reports the convergence trace.
//
// Usage:
//
//	nomad-train -profile netflix -scale 0.002 -algo nomad -epochs 10
//	nomad-train -input ratings.txt -algo dsgd -machines 4 -network commodity
//	nomad-train -profile yahoo -scale 0.001 -model out.bin
//
// The input file uses the text format "rows cols nnz" header followed
// by "user item value" lines.
package main

import (
	"flag"
	"fmt"
	"os"

	"nomad"
)

func main() {
	var (
		input    = flag.String("input", "", "rating matrix file (text format); empty = synthetic")
		profile  = flag.String("profile", "netflix", "synthetic profile: netflix, yahoo, hugewiki")
		scale    = flag.Float64("scale", 0.002, "synthetic dataset scale")
		algo     = flag.String("algo", "nomad", "algorithm: "+fmt.Sprint(nomad.Algorithms()))
		k        = flag.Int("k", 16, "latent dimension")
		lambda   = flag.Float64("lambda", 0.05, "regularization")
		alpha    = flag.Float64("alpha", 0.05, "step size α (eq. 11)")
		beta     = flag.Float64("beta", 0.02, "step decay β (eq. 11)")
		workers  = flag.Int("workers", 4, "worker threads per machine")
		machines = flag.Int("machines", 1, "simulated machines")
		network  = flag.String("network", "instant", "network profile: instant, hpc, commodity")
		balance  = flag.Bool("balance", false, "enable §3.3 dynamic load balancing")
		epochs   = flag.Int("epochs", 10, "training epochs")
		seconds  = flag.Float64("seconds", 0, "wall-clock budget (0 = epochs only)")
		testFrac = flag.Float64("test", 0.1, "test fraction for -input files")
		seed     = flag.Uint64("seed", 42, "random seed")
		modelOut = flag.String("model", "", "write the trained model to this file")
	)
	flag.Parse()

	ds, err := loadDataset(*input, *profile, *scale, *testFrac, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d train / %d test ratings\n",
		ds.Users(), ds.Items(), ds.TrainSize(), ds.TestSize())

	cfg := nomad.Config{
		Algorithm:   *algo,
		K:           *k,
		Lambda:      *lambda,
		Alpha:       *alpha,
		Beta:        *beta,
		Workers:     *workers,
		Machines:    *machines,
		Network:     *network,
		LoadBalance: *balance,
		Epochs:      *epochs,
		MaxSeconds:  *seconds,
		Seed:        *seed,
	}
	res, err := nomad.Train(ds, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-10s %-12s %s\n", "seconds", "updates", "testRMSE")
	for _, p := range res.Trace {
		fmt.Printf("%-10.3f %-12d %.6f\n", p.Seconds, p.Updates, p.RMSE)
	}
	fmt.Printf("\n%s: final test RMSE %.6f after %d updates in %.2fs",
		res.Algorithm, res.TestRMSE, res.Updates, res.Seconds)
	if res.MessagesSent > 0 {
		fmt.Printf(" (%d messages, %d bytes over %s network)",
			res.MessagesSent, res.BytesSent, *network)
	}
	fmt.Println()

	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("model written to %s\n", *modelOut)
	}
}

func loadDataset(input, profile string, scale, testFrac float64, seed uint64) (*nomad.Dataset, error) {
	if input == "" {
		return nomad.Synthesize(profile, scale, seed)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nomad.ReadDataset(f, testFrac, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-train:", err)
	os.Exit(1)
}
