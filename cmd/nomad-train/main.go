// Command nomad-train fits a matrix-completion model to a rating file
// (or a synthetic dataset) with any of the implemented solvers,
// streaming the convergence trace live as the run progresses.
//
// Usage:
//
//	nomad-train -profile netflix -scale 0.002 -algo nomad -epochs 10
//	nomad-train -input ratings.txt -algo dsgd -machines 4 -network commodity
//	nomad-train -profile yahoo -scale 0.001 -model out.bin
//
// Training runs are first-class jobs: Ctrl-C stops the run gracefully
// (workers park their tokens, the partial model is kept), and with
// -checkpoint the full training state is written on exit so a later
// invocation with -resume picks up exactly where the run stopped:
//
//	nomad-train -profile netflix -epochs 20 -checkpoint run.ckpt
//	^C                            # interrupted mid-run; run.ckpt written
//	nomad-train -profile netflix -epochs 20 -checkpoint run.ckpt -resume run.ckpt
//
// The input file uses the text format "rows cols nnz" header followed
// by "user item value" lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"nomad"
	"nomad/internal/netlink"
)

func main() {
	var (
		input      = flag.String("input", "", "rating matrix file (text format); empty = synthetic")
		profile    = flag.String("profile", "netflix", "synthetic profile: netflix, yahoo, hugewiki")
		scale      = flag.Float64("scale", 0.002, "synthetic dataset scale")
		algo       = flag.String("algo", "nomad", "algorithm: "+fmt.Sprint(nomad.Algorithms()))
		k          = flag.Int("k", 16, "latent dimension")
		lambda     = flag.Float64("lambda", 0.05, "regularization")
		alpha      = flag.Float64("alpha", 0.05, "step size α (eq. 11)")
		beta       = flag.Float64("beta", 0.02, "step decay β (eq. 11)")
		workers    = flag.Int("workers", 4, "worker threads per machine")
		machines   = flag.Int("machines", 1, "machines (simulated, loopback, or real cluster size)")
		network    = flag.String("network", "instant", "network backend: instant, hpc, commodity (simulated) or tcp (real sockets)")
		role       = flag.String("role", "", "multi-process cluster role: coordinator, worker, or join (dial a running cluster's elastic gate)")
		listen     = flag.String("listen", "", "address this process listens on (coordinator: required; worker: default :0)")
		join       = flag.String("join", "", "coordinator address a worker joins")
		lockstep   = flag.Bool("lockstep", false, "deterministic round-based distributed runner (bitwise-reproducible across backends)")
		balance    = flag.Bool("balance", false, "enable §3.3 dynamic load balancing")
		failover   = flag.Bool("failover", false, "survive a machine death: buddy replication + token-ownership failover")
		elastic    = flag.Int("elastic", 0, "provision this many spare machine slots for mid-run scale-out (implies -failover)")
		drain      = flag.Bool("drain", false, "first Ctrl-C/SIGTERM drains one machine gracefully instead of stopping the run; a second signal stops")
		gateAddr   = flag.String("elastic-gate", "", "with -elastic: listen on this address for mid-run -role=join dialers")
		chaos      = flag.String("chaos", "", "fault injection, e.g. kill:rank=2,at=mid-epoch or join@+2s;drain@+5s (kill/partition/delay/drop/join/drain; implies -failover)")
		hbEvery    = flag.Duration("heartbeat-interval", 0, "tcp liveness probe interval (0 = default 500ms)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "declare a silent tcp peer dead after this long (0 = default 10s)")
		epochs     = flag.Int("epochs", 10, "training epochs (cumulative across -resume segments)")
		seconds    = flag.Float64("seconds", 0, "wall-clock budget (0 = epochs only)")
		testFrac   = flag.Float64("test", 0.1, "test fraction for -input files")
		seed       = flag.Uint64("seed", 42, "random seed")
		modelOut   = flag.String("model", "", "write the trained model to this file")
		checkpoint = flag.String("checkpoint", "", "write the full training state to this file on exit")
		resume     = flag.String("resume", "", "resume from a checkpoint written by -checkpoint")
		quiet      = flag.Bool("quiet", false, "suppress the live event stream")
	)
	flag.Parse()

	// The join-gate digest covers every flag that shapes training, the
	// same rule the rendezvous enforces: mismatched invocations are
	// refused before any state moves.
	digest := cliDigest(*input, *profile, *scale, *algo, *k, *lambda, *alpha, *beta,
		*workers, *machines, *epochs, *seed)

	if *role == "join" {
		// Scale-out, from the outside: dial a running cluster's elastic
		// gate with the same training flags it was launched with and ask
		// for admission. The admission itself activates a provisioned
		// spare in the running cluster (fence → carve → stream → resume);
		// this process carries away the ticket.
		if *join == "" {
			fatal(fmt.Errorf("-role=join needs -join (the running coordinator's -elastic-gate address)"))
		}
		runJoinRole(*join, digest, *k)
		return
	}

	ds, err := loadDataset(*input, *profile, *scale, *testFrac, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d train / %d test ratings\n",
		ds.Users(), ds.Items(), ds.TrainSize(), ds.TestSize())

	opts := []nomad.Option{
		nomad.WithAlgorithm(*algo),
		nomad.WithRank(*k),
		nomad.WithLambda(*lambda),
		nomad.WithSchedule(*alpha, *beta),
		nomad.WithWorkers(*workers),
		nomad.WithSeed(*seed),
	}
	switch *role {
	case "":
		opts = append(opts, nomad.WithCluster(*machines, *network))
	case "coordinator":
		if *listen == "" {
			fatal(fmt.Errorf("-role=coordinator needs -listen"))
		}
		opts = append(opts, nomad.WithCluster(*machines, "tcp", *listen))
	case "worker":
		if *join == "" {
			fatal(fmt.Errorf("-role=worker needs -join"))
		}
		workerListen := *listen
		if workerListen == "" {
			workerListen = ":0"
		}
		opts = append(opts, nomad.WithCluster(0, "tcp", workerListen, *join))
	default:
		fatal(fmt.Errorf("unknown -role %q (coordinator, worker, join)", *role))
	}
	if *lockstep {
		opts = append(opts, nomad.WithLockstep())
	}
	if *balance {
		opts = append(opts, nomad.WithLoadBalance())
	}
	if *failover {
		opts = append(opts, nomad.WithFailover())
	}
	if *elastic > 0 || *drain {
		// -drain needs the elastic runtime even with zero spares: a
		// graceful leave is a membership change like any other.
		opts = append(opts, nomad.WithElastic(*elastic))
	}
	if *chaos != "" {
		opts = append(opts, nomad.WithChaos(*chaos))
	}
	if *hbEvery != 0 || *hbTimeout != 0 {
		opts = append(opts, nomad.WithHeartbeat(*hbEvery, *hbTimeout))
	}
	stops := []nomad.StopCondition{nomad.MaxEpochs(*epochs)}
	if *seconds > 0 {
		stops = append(stops, nomad.MaxDuration(time.Duration(*seconds*float64(time.Second))))
	}
	opts = append(opts, nomad.WithStopConditions(stops...))

	s, err := nomad.NewSession(ds, opts...)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		err = s.Resume(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s\n", *resume)
	}

	// Stream events live: trace samples as they are taken, epoch
	// boundaries, network accounting for distributed runs.
	done := make(chan struct{})
	cancelSub := func() {}
	recoveryMs := -1.0                 // set by the printer goroutine, read after <-done
	resizeMs := map[string][]float64{} // per-kind commit latencies, same discipline
	if *quiet {
		close(done)
	} else {
		var events <-chan nomad.Event
		events, cancelSub = s.Subscribe(256)
		fmt.Printf("%-10s %-12s %s\n", "seconds", "updates", "testRMSE")
		go func() {
			defer close(done)
			for e := range events {
				switch ev := e.(type) {
				case nomad.TraceEvent:
					fmt.Printf("%-10.3f %-12d %.6f\n", ev.Seconds, ev.Updates, ev.RMSE)
				case nomad.EpochEvent:
					fmt.Printf("          [epoch %d complete at %d updates]\n", ev.Epoch, ev.Updates)
				case nomad.PeerDownEvent:
					fmt.Printf("          [machine %d DOWN: %s]\n", ev.Rank, ev.Reason)
				case nomad.PeerRecoveredEvent:
					fmt.Printf("          [machine %d recovered by failover in %.1fms]\n",
						ev.Rank, ev.RecoverySeconds*1e3)
					recoveryMs = ev.RecoverySeconds * 1e3
				case nomad.ResizeEvent:
					verb := "joined"
					if ev.Kind == "drain" {
						verb = "drained"
					}
					fmt.Printf("          [machine %d %s in %.1fms; %d machines active]\n",
						ev.Rank, verb, ev.Seconds*1e3, ev.Machines)
					resizeMs[ev.Kind] = append(resizeMs[ev.Kind], ev.Seconds*1e3)
				}
			}
		}()
	}

	// Ctrl-C (or SIGTERM) cancels the run's context; every solver
	// stops promptly and hands back its partial state. With -drain the
	// first signal instead asks the run to shed one machine gracefully
	// — its tokens stream to a ring buddy, nothing is lost — and only a
	// second signal stops the run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		drainFirst := *drain
		for range sigc {
			if drainFirst {
				drainFirst = false
				fmt.Println("          [signal: draining one machine; signal again to stop]")
				go func() {
					if err := s.Resize().Drain(-1); err != nil {
						fmt.Fprintln(os.Stderr, "nomad-train: drain:", err)
						cancel()
					}
				}()
				continue
			}
			cancel()
			return
		}
	}()

	// With -elastic-gate the run admits external -role=join dialers: a
	// matching-digest Hello triggers a live scale-out (the next idle
	// spare activates) and the dialer receives its admission ticket
	// once the membership change commits.
	if *gateAddr != "" {
		if *elastic <= 0 {
			fatal(fmt.Errorf("-elastic-gate needs -elastic spare slots to admit joiners into"))
		}
		gate, err := netlink.OpenJoinGate(*gateAddr, digest, admitJoiner(s), netlink.Options{K: *k})
		if err != nil {
			fatal(err)
		}
		defer gate.Close()
		fmt.Printf("elastic join gate on %s\n", gate.Addr())
		go gate.Serve(ctx) //nolint:errcheck // ends with the run context
	}

	res, err := s.Run(ctx)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if res == nil {
		// Cancelled before any trainable progress existed — e.g. a
		// worker stopped mid-rendezvous, or a lockstep rank aborted.
		fatal(fmt.Errorf("interrupted before any progress was made: %w", err))
	}
	cancel()
	cancelSub() // closes the event channel so the printer drains and exits
	<-done      // flush pending event output before the summary

	switch {
	case interrupted:
		fmt.Printf("\ninterrupted: %s stopped gracefully after %d updates in %.2fs (test RMSE %.6f)\n",
			res.Algorithm, res.Updates, res.Seconds, res.TestRMSE)
	case *role == "worker":
		// A worker holds only its partition of the model; the
		// coordinator owns the gathered result.
		fmt.Printf("\nworker done: %d cluster updates, %d messages, %d bytes sent\n",
			res.Updates, res.MessagesSent, res.BytesSent)
	default:
		fmt.Printf("\n%s: final test RMSE %.6f after %d updates in %.2fs",
			res.Algorithm, res.TestRMSE, res.Updates, res.Seconds)
		if res.MessagesSent > 0 {
			netName := *network
			if *role != "" {
				netName = "tcp"
			}
			fmt.Printf(" (%d messages, %d bytes over %s network)",
				res.MessagesSent, res.BytesSent, netName)
		}
		fmt.Println()
		// Machine-readable lines for scripts (the CI distributed job
		// asserts RMSE parity across backends on the rmse line; the
		// fault-injection job asserts recovery on recovery_ms).
		fmt.Printf("rmse: %.12f\n", res.TestRMSE)
		if recoveryMs >= 0 {
			fmt.Printf("recovery_ms: %.3f\n", recoveryMs)
		}
		if len(resizeMs) > 0 {
			// One line per run: the median request→resume latency of each
			// membership-change kind that happened (CI asserts on it).
			line := "resize_ms:"
			for _, kind := range []string{"join", "drain"} {
				if ms := resizeMs[kind]; len(ms) > 0 {
					line += fmt.Sprintf(" %s=%.3f", kind, median(ms))
				}
			}
			fmt.Println(line)
		}
		if *algo == "nomad" && (*machines > 1 || *role == "coordinator") {
			// Every distributed teardown verifies the ownership
			// invariant — each of the n item tokens recovered exactly
			// once — and fails the run otherwise, so reaching this
			// line means the check passed.
			fmt.Printf("token conservation: exact (%d item tokens recovered)\n", ds.Items())
		}
	}

	if *checkpoint != "" {
		if err := writeFile(*checkpoint, s.Checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("training state written to %s", *checkpoint)
		if interrupted {
			fmt.Printf(" (resume with -resume %s)", *checkpoint)
		}
		fmt.Println()
	}
	if *modelOut != "" {
		if err := writeFile(*modelOut, res.Model.Save); err != nil {
			fatal(err)
		}
		fmt.Printf("model written to %s\n", *modelOut)
	}
}

// cliDigest summarizes the training invocation for the join-gate
// handshake — FNV-1a over the flag tuple, mirroring the rendezvous
// rule that every process must run the same dataset, seed and
// hyper-parameters.
func cliDigest(vals ...any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "nomad-train|%v", vals)
	return h.Sum64()
}

// admitJoiner builds the gate's admission decision for a running
// session: trigger a live scale-out on the next idle spare and report
// the committed rank and cluster size back to the dialer.
func admitJoiner(s *nomad.Session) netlink.AdmitFunc {
	return func(addr string) (netlink.Admission, error) {
		events, cancelSub := s.Subscribe(128)
		defer cancelSub()
		if err := s.Resize().Join(-1); err != nil {
			return netlink.Admission{}, err
		}
		timeout := time.After(time.Minute)
		for {
			select {
			case e, ok := <-events:
				if !ok {
					return netlink.Admission{}, fmt.Errorf("run ended before the join committed")
				}
				if ev, ok := e.(nomad.ResizeEvent); ok && ev.Kind == "join" {
					return netlink.Admission{Rank: ev.Rank, Machines: ev.Machines}, nil
				}
			case <-timeout:
				return netlink.Admission{}, fmt.Errorf("join did not commit within a minute")
			}
		}
	}
}

// runJoinRole is the whole life of a -role=join process: dial the
// gate, get admitted (or refused), print the ticket.
func runJoinRole(gate string, digest uint64, k int) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	tk, err := netlink.DialJoin(ctx, gate, "", digest, netlink.Options{K: k})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("admitted: machine %d of %d (k=%d); the cluster carved an ownership share and resumed\n",
		tk.Rank, tk.Machines, tk.K)
	if n := len(tk.Owner); n > 0 {
		owned := 0
		for _, o := range tk.Owner {
			if int(o) == tk.Rank {
				owned++
			}
		}
		fmt.Printf("ownership map: %d of %d item tokens assigned here\n", owned, n)
	}
	if tk.State != nil {
		fmt.Printf("resume state received: %d cluster updates so far\n", tk.State.Updates)
	}
}

// median reports the middle value of xs (mean of the middle two for
// even counts). xs must be non-empty; it is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// writeFile creates path and streams write(f) into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadDataset(input, profile string, scale, testFrac float64, seed uint64) (*nomad.Dataset, error) {
	if input == "" {
		return nomad.Synthesize(profile, scale, seed)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nomad.ReadDataset(f, testFrac, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-train:", err)
	os.Exit(1)
}
