// Command nomad-train fits a matrix-completion model to a rating file
// (or a synthetic dataset) with any of the implemented solvers,
// streaming the convergence trace live as the run progresses.
//
// Usage:
//
//	nomad-train -profile netflix -scale 0.002 -algo nomad -epochs 10
//	nomad-train -input ratings.txt -algo dsgd -machines 4 -network commodity
//	nomad-train -profile yahoo -scale 0.001 -model out.bin
//
// Training runs are first-class jobs: Ctrl-C stops the run gracefully
// (workers park their tokens, the partial model is kept), and with
// -checkpoint the full training state is written on exit so a later
// invocation with -resume picks up exactly where the run stopped:
//
//	nomad-train -profile netflix -epochs 20 -checkpoint run.ckpt
//	^C                            # interrupted mid-run; run.ckpt written
//	nomad-train -profile netflix -epochs 20 -checkpoint run.ckpt -resume run.ckpt
//
// The input file uses the text format "rows cols nnz" header followed
// by "user item value" lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nomad"
)

func main() {
	var (
		input      = flag.String("input", "", "rating matrix file (text format); empty = synthetic")
		profile    = flag.String("profile", "netflix", "synthetic profile: netflix, yahoo, hugewiki")
		scale      = flag.Float64("scale", 0.002, "synthetic dataset scale")
		algo       = flag.String("algo", "nomad", "algorithm: "+fmt.Sprint(nomad.Algorithms()))
		k          = flag.Int("k", 16, "latent dimension")
		lambda     = flag.Float64("lambda", 0.05, "regularization")
		alpha      = flag.Float64("alpha", 0.05, "step size α (eq. 11)")
		beta       = flag.Float64("beta", 0.02, "step decay β (eq. 11)")
		workers    = flag.Int("workers", 4, "worker threads per machine")
		machines   = flag.Int("machines", 1, "machines (simulated, loopback, or real cluster size)")
		network    = flag.String("network", "instant", "network backend: instant, hpc, commodity (simulated) or tcp (real sockets)")
		role       = flag.String("role", "", "multi-process cluster role: coordinator or worker (implies -network tcp)")
		listen     = flag.String("listen", "", "address this process listens on (coordinator: required; worker: default :0)")
		join       = flag.String("join", "", "coordinator address a worker joins")
		lockstep   = flag.Bool("lockstep", false, "deterministic round-based distributed runner (bitwise-reproducible across backends)")
		balance    = flag.Bool("balance", false, "enable §3.3 dynamic load balancing")
		failover   = flag.Bool("failover", false, "survive a machine death: buddy replication + token-ownership failover")
		chaos      = flag.String("chaos", "", "fault injection, e.g. kill:rank=2,at=mid-epoch (kill/partition/delay/drop; implies -failover for kill)")
		hbEvery    = flag.Duration("heartbeat-interval", 0, "tcp liveness probe interval (0 = default 500ms)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "declare a silent tcp peer dead after this long (0 = default 10s)")
		epochs     = flag.Int("epochs", 10, "training epochs (cumulative across -resume segments)")
		seconds    = flag.Float64("seconds", 0, "wall-clock budget (0 = epochs only)")
		testFrac   = flag.Float64("test", 0.1, "test fraction for -input files")
		seed       = flag.Uint64("seed", 42, "random seed")
		modelOut   = flag.String("model", "", "write the trained model to this file")
		checkpoint = flag.String("checkpoint", "", "write the full training state to this file on exit")
		resume     = flag.String("resume", "", "resume from a checkpoint written by -checkpoint")
		quiet      = flag.Bool("quiet", false, "suppress the live event stream")
	)
	flag.Parse()

	ds, err := loadDataset(*input, *profile, *scale, *testFrac, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d train / %d test ratings\n",
		ds.Users(), ds.Items(), ds.TrainSize(), ds.TestSize())

	opts := []nomad.Option{
		nomad.WithAlgorithm(*algo),
		nomad.WithRank(*k),
		nomad.WithLambda(*lambda),
		nomad.WithSchedule(*alpha, *beta),
		nomad.WithWorkers(*workers),
		nomad.WithSeed(*seed),
	}
	switch *role {
	case "":
		opts = append(opts, nomad.WithCluster(*machines, *network))
	case "coordinator":
		if *listen == "" {
			fatal(fmt.Errorf("-role=coordinator needs -listen"))
		}
		opts = append(opts, nomad.WithCluster(*machines, "tcp", *listen))
	case "worker":
		if *join == "" {
			fatal(fmt.Errorf("-role=worker needs -join"))
		}
		workerListen := *listen
		if workerListen == "" {
			workerListen = ":0"
		}
		opts = append(opts, nomad.WithCluster(0, "tcp", workerListen, *join))
	default:
		fatal(fmt.Errorf("unknown -role %q (coordinator, worker)", *role))
	}
	if *lockstep {
		opts = append(opts, nomad.WithLockstep())
	}
	if *balance {
		opts = append(opts, nomad.WithLoadBalance())
	}
	if *failover {
		opts = append(opts, nomad.WithFailover())
	}
	if *chaos != "" {
		opts = append(opts, nomad.WithChaos(*chaos))
	}
	if *hbEvery != 0 || *hbTimeout != 0 {
		opts = append(opts, nomad.WithHeartbeat(*hbEvery, *hbTimeout))
	}
	stops := []nomad.StopCondition{nomad.MaxEpochs(*epochs)}
	if *seconds > 0 {
		stops = append(stops, nomad.MaxDuration(time.Duration(*seconds*float64(time.Second))))
	}
	opts = append(opts, nomad.WithStopConditions(stops...))

	s, err := nomad.NewSession(ds, opts...)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		err = s.Resume(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s\n", *resume)
	}

	// Stream events live: trace samples as they are taken, epoch
	// boundaries, network accounting for distributed runs.
	done := make(chan struct{})
	cancelSub := func() {}
	recoveryMs := -1.0 // set by the printer goroutine, read after <-done
	if *quiet {
		close(done)
	} else {
		var events <-chan nomad.Event
		events, cancelSub = s.Subscribe(256)
		fmt.Printf("%-10s %-12s %s\n", "seconds", "updates", "testRMSE")
		go func() {
			defer close(done)
			for e := range events {
				switch ev := e.(type) {
				case nomad.TraceEvent:
					fmt.Printf("%-10.3f %-12d %.6f\n", ev.Seconds, ev.Updates, ev.RMSE)
				case nomad.EpochEvent:
					fmt.Printf("          [epoch %d complete at %d updates]\n", ev.Epoch, ev.Updates)
				case nomad.PeerDownEvent:
					fmt.Printf("          [machine %d DOWN: %s]\n", ev.Rank, ev.Reason)
				case nomad.PeerRecoveredEvent:
					fmt.Printf("          [machine %d recovered by failover in %.1fms]\n",
						ev.Rank, ev.RecoverySeconds*1e3)
					recoveryMs = ev.RecoverySeconds * 1e3
				}
			}
		}()
	}

	// Ctrl-C (or SIGTERM) cancels the run's context; every solver
	// stops promptly and hands back its partial state.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	res, err := s.Run(ctx)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if res == nil {
		// Cancelled before any trainable progress existed — e.g. a
		// worker stopped mid-rendezvous, or a lockstep rank aborted.
		fatal(fmt.Errorf("interrupted before any progress was made: %w", err))
	}
	cancel()
	cancelSub() // closes the event channel so the printer drains and exits
	<-done      // flush pending event output before the summary

	switch {
	case interrupted:
		fmt.Printf("\ninterrupted: %s stopped gracefully after %d updates in %.2fs (test RMSE %.6f)\n",
			res.Algorithm, res.Updates, res.Seconds, res.TestRMSE)
	case *role == "worker":
		// A worker holds only its partition of the model; the
		// coordinator owns the gathered result.
		fmt.Printf("\nworker done: %d cluster updates, %d messages, %d bytes sent\n",
			res.Updates, res.MessagesSent, res.BytesSent)
	default:
		fmt.Printf("\n%s: final test RMSE %.6f after %d updates in %.2fs",
			res.Algorithm, res.TestRMSE, res.Updates, res.Seconds)
		if res.MessagesSent > 0 {
			netName := *network
			if *role != "" {
				netName = "tcp"
			}
			fmt.Printf(" (%d messages, %d bytes over %s network)",
				res.MessagesSent, res.BytesSent, netName)
		}
		fmt.Println()
		// Machine-readable lines for scripts (the CI distributed job
		// asserts RMSE parity across backends on the rmse line; the
		// fault-injection job asserts recovery on recovery_ms).
		fmt.Printf("rmse: %.12f\n", res.TestRMSE)
		if recoveryMs >= 0 {
			fmt.Printf("recovery_ms: %.3f\n", recoveryMs)
		}
		if *algo == "nomad" && (*machines > 1 || *role == "coordinator") {
			// Every distributed teardown verifies the ownership
			// invariant — each of the n item tokens recovered exactly
			// once — and fails the run otherwise, so reaching this
			// line means the check passed.
			fmt.Printf("token conservation: exact (%d item tokens recovered)\n", ds.Items())
		}
	}

	if *checkpoint != "" {
		if err := writeFile(*checkpoint, s.Checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("training state written to %s", *checkpoint)
		if interrupted {
			fmt.Printf(" (resume with -resume %s)", *checkpoint)
		}
		fmt.Println()
	}
	if *modelOut != "" {
		if err := writeFile(*modelOut, res.Model.Save); err != nil {
			fatal(err)
		}
		fmt.Printf("model written to %s\n", *modelOut)
	}
}

// writeFile creates path and streams write(f) into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadDataset(input, profile string, scale, testFrac float64, seed uint64) (*nomad.Dataset, error) {
	if input == "" {
		return nomad.Synthesize(profile, scale, seed)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nomad.ReadDataset(f, testFrac, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-train:", err)
	os.Exit(1)
}
