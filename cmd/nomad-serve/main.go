// Command nomad-serve answers top-N recommendation queries over HTTP
// from a model trained by nomad-train, with hot model swap and
// optional item sharding.
//
//	GET /v1/recommend?user=U&n=N  → {"user":U,"epoch":e,"items":[{"item":j,"score":s},...]}
//	GET /healthz                  → 200 once a model is loaded
//	GET /v1/stats                 → counters, epoch and shape info
//
// Model source (exactly one):
//
//	nomad-serve -model model.bin                 # static file
//	nomad-serve -watch ckpts/ -poll 200ms        # hot swap: highest-epoch file wins,
//	                                             # new epochs promoted live, zero dropped requests
//
// Training-set exclusion: pass the same dataset flags the model was
// trained with and rated items are excluded from results (the CI
// equality gate relies on this matching Model.Recommend):
//
//	nomad-serve -model model.bin -profile netflix -scale 0.005 -seed 42
//
// Sharded serving splits the item catalog across processes with the
// same ownership map the trainer broadcasts at rendezvous; the
// gateway scatters each query and merges the exact top-N:
//
//	nomad-serve -model model.bin -shards 3                     # loopback TCP mesh in one process
//	nomad-serve -model model.bin -role gateway -listen :7000 -machines 3
//	nomad-serve -model model.bin -role shard -join host:7000   # ×2, one per shard machine
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nomad"
	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/netlink"
	"nomad/internal/partition"
	"nomad/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address (gateway)")
		model    = flag.String("model", "", "model or checkpoint file to serve")
		watch    = flag.String("watch", "", "directory of epoch-numbered model files, hot-swapped as they appear")
		poll     = flag.Duration("poll", 200*time.Millisecond, "watch directory poll interval")
		input    = flag.String("input", "", "rating matrix file for training-set exclusion")
		profile  = flag.String("profile", "", "synthetic dataset profile for exclusion (netflix, yahoo, hugewiki); empty = no exclusion")
		scale    = flag.Float64("scale", 0.002, "synthetic dataset scale")
		testFrac = flag.Float64("test", 0.1, "test fraction for -input files")
		seed     = flag.Uint64("seed", 42, "dataset seed (must match training)")
		shards   = flag.Int("shards", 1, "item shards served from one process over a loopback TCP mesh")
		role     = flag.String("role", "", "multi-process cluster role: gateway or shard")
		listen   = flag.String("listen", "", "address this process listens on (gateway rendezvous: required; shard: default :0)")
		join     = flag.String("join", "", "gateway rendezvous address a shard joins")
		machines = flag.Int("machines", 0, "cluster size including the gateway (gateway role)")
		maxN     = flag.Int("topn-max", 1000, "largest accepted n query parameter")
		partial  = flag.Bool("allow-partial", false, "serve partial results (X-Nomad-Partial: true) when a shard peer is down instead of failing with 503")
	)
	flag.Parse()

	if (*model == "") == (*watch == "") {
		fatal(fmt.Errorf("exactly one of -model and -watch is required"))
	}
	src := serve.Source{Path: *model, WatchDir: *watch, Poll: *poll}

	ds, err := loadDataset(*input, *profile, *scale, *testFrac, *seed)
	if err != nil {
		fatal(err)
	}
	validate := func(md *factor.Model) error {
		if ds == nil {
			return nil
		}
		if md.M != ds.Users() || md.N != ds.Items() {
			return fmt.Errorf("model shape %d×%d does not match exclusion dataset %d×%d (same -profile/-scale/-seed as training?)",
				md.M, md.N, ds.Users(), ds.Items())
		}
		return nil
	}
	var rated func(user int32) []int32
	if ds != nil {
		rated = func(user int32) []int32 { return ds.RatedItems(int(user)) }
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	switch {
	case *role == "" && *shards <= 1:
		runLocal(ctx, src, *addr, rated, validate, *maxN)
	case *role == "":
		runLoopback(ctx, src, *addr, rated, validate, *maxN, *shards, *partial)
	case *role == "gateway":
		if *listen == "" || *machines < 2 {
			fatal(fmt.Errorf("-role=gateway needs -listen and -machines ≥ 2"))
		}
		runGatewayProc(ctx, src, *addr, rated, validate, *maxN, *listen, *machines, *partial)
	case *role == "shard":
		if *join == "" {
			fatal(fmt.Errorf("-role=shard needs -join"))
		}
		shardListen := *listen
		if shardListen == "" {
			shardListen = ":0"
		}
		shardMachines := *machines
		if shardMachines < 2 {
			shardMachines = 2
		}
		runShardProc(ctx, src, *join, shardListen, shardMachines)
	default:
		fatal(fmt.Errorf("unknown -role %q (gateway, shard)", *role))
	}
}

// runLocal serves a single unsharded store.
func runLocal(ctx context.Context, src serve.Source, addr string, rated func(int32) []int32, validate func(*factor.Model) error, maxN int) {
	store, watcher, err := src.Open(nil, validate)
	if err != nil {
		fatal(err)
	}
	if watcher != nil {
		go watcher.Run(ctx)
	}
	srv := serve.NewServer(serve.Config{Store: store, Rated: rated, Watcher: watcher, MaxN: maxN})
	serveHTTP(ctx, addr, srv, store)
}

// openShard opens src restricted to one item shard. Sharded mode
// needs the model shape before traffic, so an empty watch directory
// is an error here (unlike single-shard watch mode, which may boot
// empty and fill later).
func openShard(src serve.Source, owned []int32, validate func(*factor.Model) error) (*serve.Store, *serve.Watcher) {
	store, watcher, err := src.Open(owned, validate)
	if err != nil {
		fatal(err)
	}
	if store.Seq() == 0 {
		fatal(fmt.Errorf("sharded serving needs an initial model in %s", src.WatchDir))
	}
	return store, watcher
}

// shardShape loads the model once just to learn its shape, which
// fixes the ownership map and the rendezvous config digest.
func shardShape(src serve.Source, validate func(*factor.Model) error) (m, n, k int, prec factor.Precision) {
	store, _, err := src.Open(nil, validate)
	if err != nil {
		fatal(err)
	}
	ep := store.Acquire()
	if ep == nil {
		fatal(fmt.Errorf("sharded serving needs an initial model"))
	}
	defer ep.Release()
	return ep.Model.M, ep.Model.N, ep.Model.K, ep.Model.Precision()
}

// runLoopback serves shards item shards from one process over a real
// TCP loopback mesh — the same rendezvous and ownership-map broadcast
// a multi-process cluster uses, collapsed into one binary.
func runLoopback(ctx context.Context, src serve.Source, addr string, rated func(int32) []int32, validate func(*factor.Model) error, maxN, shards int, allowPartial bool) {
	m, n, k, prec := shardShape(src, validate)
	owner := ownerMap(n, shards)
	sum := serve.ConfigDigest(m, n, k, prec, shards)
	links, err := netlink.Loopback(ctx, shards, sum, owner, nil, netlink.Options{K: k})
	if err != nil {
		fatal(err)
	}
	for rank := 1; rank < shards; rank++ {
		store, watcher, err := src.Open(ownedBy(owner, rank), nil)
		if err != nil {
			fatal(err)
		}
		if watcher != nil {
			go watcher.Run(ctx)
		}
		go func(link cluster.Link, store *serve.Store) {
			if err := serve.ServeShard(ctx, link, store); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "nomad-serve: shard:", err)
			}
		}(links[rank], store)
	}
	store, watcher := openShard(src, ownedBy(owner, 0), validate)
	if watcher != nil {
		go watcher.Run(ctx)
	}
	gw := serve.NewGateway(links[0], store, 0)
	gw.SetAllowPartial(allowPartial)
	go gw.Dispatch()
	srv := serve.NewServer(serve.Config{Store: store, Gateway: gw, Rated: rated, Watcher: watcher, MaxN: maxN})
	fmt.Printf("serving %d item shards over loopback mesh\n", shards)
	serveHTTP(ctx, addr, srv, store)
}

// runGatewayProc is the multi-process gateway: machine 0 of a netlink
// mesh, broadcasting the item ownership map at rendezvous exactly as
// the trainer's coordinator does.
func runGatewayProc(ctx context.Context, src serve.Source, addr string, rated func(int32) []int32, validate func(*factor.Model) error, maxN int, listen string, machines int, allowPartial bool) {
	m, n, k, prec := shardShape(src, validate)
	owner := ownerMap(n, machines)
	sum := serve.ConfigDigest(m, n, k, prec, machines)
	coord, err := netlink.NewCoordinator(listen, machines, sum, owner, nil, netlink.Options{K: k})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gateway rendezvous on %s, waiting for %d shards\n", coord.Addr(), machines-1)
	link, err := coord.Run(ctx)
	if err != nil {
		fatal(err)
	}
	defer link.Close()
	store, watcher := openShard(src, ownedBy(owner, 0), validate)
	if watcher != nil {
		go watcher.Run(ctx)
	}
	gw := serve.NewGateway(link, store, 0)
	gw.SetAllowPartial(allowPartial)
	go gw.Dispatch()
	srv := serve.NewServer(serve.Config{Store: store, Gateway: gw, Rated: rated, Watcher: watcher, MaxN: maxN})
	serveHTTP(ctx, addr, srv, store)
}

// runShardProc is one multi-process shard: it joins the gateway's
// rendezvous, learns its item ownership from the handshake, and
// answers scatter queries until the link closes.
func runShardProc(ctx context.Context, src serve.Source, join, listen string, machines int) {
	// The config digest must match the gateway's, and it covers the
	// model shape AND the cluster size — so a shard started with the
	// wrong -machines (or a stale model file) is refused at the
	// handshake, before any traffic flows.
	m, n, k, prec := shardShape(src, nil)
	sum := serve.ConfigDigest(m, n, k, prec, machines)
	link, hs, err := netlink.Join(ctx, join, listen, sum, netlink.Options{K: k})
	if err != nil {
		fatal(err)
	}
	defer link.Close()
	store, watcher, err := src.Open(ownedBy(hs.Owner, link.Rank()), nil)
	if err != nil {
		fatal(err)
	}
	if store.Seq() == 0 {
		fatal(fmt.Errorf("sharded serving needs an initial model"))
	}
	if watcher != nil {
		go watcher.Run(ctx)
	}
	fmt.Printf("shard %d/%d serving %d items\n", link.Rank(), link.Machines(), len(ownedBy(hs.Owner, link.Rank())))
	if err := serve.ServeShard(ctx, link, store); err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
}

// ownerMap assigns each item to a shard with the trainer's default
// partition (contiguous equal ranges).
func ownerMap(items, shards int) []int32 {
	pt := partition.EqualRanges(items, shards)
	owner := make([]int32, items)
	for j := range owner {
		owner[j] = int32(pt.Owner(j))
	}
	return owner
}

// ownedBy returns the items owner assigns to rank, ascending.
func ownedBy(owner []int32, rank int) []int32 {
	var owned []int32
	for j, o := range owner {
		if int(o) == rank {
			owned = append(owned, int32(j))
		}
	}
	return owned
}

// serveHTTP runs the HTTP front end until ctx is cancelled.
func serveHTTP(ctx context.Context, addr string, srv *serve.Server, store *serve.Store) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()
	if store.Seq() > 0 {
		fmt.Printf("serving epoch %d on %s\n", store.Seq(), ln.Addr())
	} else {
		fmt.Printf("serving on %s (no model yet; waiting for the watch directory)\n", ln.Addr())
	}
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func loadDataset(input, profile string, scale, testFrac float64, seed uint64) (*nomad.Dataset, error) {
	if input == "" && profile == "" {
		return nil, nil
	}
	if input == "" {
		return nomad.Synthesize(profile, scale, seed)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nomad.ReadDataset(f, testFrac, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nomad-serve:", err)
	os.Exit(1)
}
