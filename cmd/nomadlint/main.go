// Command nomadlint is the module's invariant linter: a multichecker
// over the domain-specific analyzers in internal/analysis that
// machine-check what DESIGN.md promises in prose — arena ownership
// (arenaowner), one access discipline per shared word (atomicmix),
// zero-alloc hot paths (noallochot), kernel-dispatch routing
// (kerneldispatch) — plus the //nomad: directive grammar itself
// (nomaddirective), so a typo'd suppression fails the build instead
// of silently suppressing nothing.
//
// Usage:
//
//	nomadlint [-only name,name] [packages]
//
// Packages default to ./... and use go-list pattern syntax. Exit
// status is 0 for a clean tree, 1 when findings are reported, 2 when
// the run itself fails (load error, broken analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nomad/internal/analysis/arenaowner"
	"nomad/internal/analysis/atomicmix"
	"nomad/internal/analysis/directive"
	"nomad/internal/analysis/framework"
	"nomad/internal/analysis/kerneldispatch"
	"nomad/internal/analysis/noallochot"
)

// all is the registered suite, in diagnostic-prefix alphabetical
// order.
var all = []*framework.Analyzer{
	arenaowner.Analyzer,
	atomicmix.Analyzer,
	kerneldispatch.Analyzer,
	noallochot.Analyzer,
	directive.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nomadlint [-only name,name] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := all
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "nomadlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, pkgs, err := framework.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nomadlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := framework.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nomadlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
